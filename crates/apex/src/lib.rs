//! # rpx-apex — a runtime-adaptive policy engine on intrinsic counters
//!
//! The paper's conclusion (§VII) points at APEX: "a Policy Engine that
//! executes performance analysis functions to enforce policy rules" on top
//! of the counter framework, enabling runtime adaptation. This crate is
//! that extension, minimally and concretely:
//!
//! - a [`Tunable`] is a bounded numeric knob the application (or runtime)
//!   reads on its hot path;
//! - a [`Policy`] names a set of counters, a period, and a rule that turns
//!   fresh counter readings into knob adjustments;
//! - the [`PolicyEngine`] evaluates due policies on a background thread
//!   with the same evaluate/reset protocol the paper's measurements use.
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicI64, Ordering};
//! use rpx_counters::CounterRegistry;
//! use rpx_apex::{Policy, PolicyEngine, Tunable};
//!
//! let registry = CounterRegistry::new();
//! let load = Arc::new(AtomicI64::new(95));
//! let l2 = load.clone();
//! registry.register_raw("/app/load", "load percent", "%", Arc::new(move || l2.load(Ordering::Relaxed)));
//!
//! // Keep a parallelism knob proportional to measured load.
//! let knob = Tunable::new(4, 1, 16);
//! let k2 = knob.clone();
//! let policy = Policy::new("throttle", vec!["/app/load".into()])
//!     .with_period(std::time::Duration::from_millis(5))
//!     .with_rule(move |ctx| {
//!         if let Some(v) = ctx.value("/app/load") {
//!             if v > 90.0 { k2.step(-1); } else if v < 50.0 { k2.step(1); }
//!         }
//!     });
//!
//! let engine = PolicyEngine::start(&registry, vec![policy]).unwrap();
//! while knob.get() == 4 {
//!     std::thread::yield_now(); // wait for the first firing
//! }
//! engine.stop();
//! assert!(knob.get() < 4, "high load must throttle the knob");
//! ```

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rpx_counters::{Counter, CounterError, CounterName, CounterRegistry, CounterValue};

/// A bounded integer knob adjusted by policies and read on hot paths.
#[derive(Clone)]
pub struct Tunable {
    inner: Arc<TunableInner>,
}

struct TunableInner {
    value: AtomicI64,
    min: i64,
    max: i64,
    changes: AtomicU64,
}

impl Tunable {
    /// A knob starting at `initial`, clamped to `[min, max]`.
    pub fn new(initial: i64, min: i64, max: i64) -> Self {
        assert!(min <= max, "empty tunable range");
        Tunable {
            inner: Arc::new(TunableInner {
                value: AtomicI64::new(initial.clamp(min, max)),
                min,
                max,
                changes: AtomicU64::new(0),
            }),
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.inner.value.load(Ordering::Acquire)
    }

    /// Set (clamped). Returns the value actually stored.
    pub fn set(&self, v: i64) -> i64 {
        let clamped = v.clamp(self.inner.min, self.inner.max);
        if self.inner.value.swap(clamped, Ordering::AcqRel) != clamped {
            self.inner.changes.fetch_add(1, Ordering::Relaxed);
        }
        clamped
    }

    /// Add `delta` (clamped). Returns the new value.
    pub fn step(&self, delta: i64) -> i64 {
        self.set(self.get() + delta)
    }

    /// Multiply by `factor` (clamped; rounds to nearest).
    pub fn scale(&self, factor: f64) -> i64 {
        self.set((self.get() as f64 * factor).round() as i64)
    }

    /// How many times the stored value actually changed.
    pub fn changes(&self) -> u64 {
        self.inner.changes.load(Ordering::Relaxed)
    }

    /// The configured bounds.
    pub fn bounds(&self) -> (i64, i64) {
        (self.inner.min, self.inner.max)
    }
}

/// What a rule sees on each firing.
pub struct PolicyContext<'a> {
    /// The policy's counter readings for this period (evaluate-with-reset:
    /// each firing sees only its own interval).
    pub readings: &'a [(CounterName, CounterValue)],
    /// How many times this policy has fired before (0 on the first firing).
    pub fires: u64,
}

impl PolicyContext<'_> {
    /// The scaled value of the reading whose name starts with `prefix`
    /// (readings are wildcard-expanded, so prefix match is the ergonomic
    /// lookup). Returns `None` if absent or invalid.
    pub fn value(&self, prefix: &str) -> Option<f64> {
        self.readings
            .iter()
            .find(|(n, v)| n.to_string().starts_with(prefix) && v.status.is_ok())
            .map(|(_, v)| v.scaled())
    }

    /// Sum of scaled values over readings starting with `prefix`.
    pub fn sum(&self, prefix: &str) -> f64 {
        self.readings
            .iter()
            .filter(|(n, v)| n.to_string().starts_with(prefix) && v.status.is_ok())
            .map(|(_, v)| v.scaled())
            .sum()
    }
}

type Rule = Box<dyn FnMut(&PolicyContext<'_>) + Send>;

/// A named adaptation rule over a counter set.
pub struct Policy {
    name: String,
    counters: Vec<String>,
    period: Duration,
    reset_on_read: bool,
    rule: Option<Rule>,
}

impl Policy {
    /// A policy watching `counters` (wildcards allowed).
    pub fn new(name: impl Into<String>, counters: Vec<String>) -> Self {
        Policy {
            name: name.into(),
            counters,
            period: Duration::from_millis(100),
            reset_on_read: true,
            rule: None,
        }
    }

    /// Evaluation period (default 100 ms).
    pub fn with_period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Whether each firing resets the counters (default true: per-interval
    /// deltas, the paper's protocol).
    pub fn with_reset(mut self, reset: bool) -> Self {
        self.reset_on_read = reset;
        self
    }

    /// The rule body.
    pub fn with_rule(mut self, rule: impl FnMut(&PolicyContext<'_>) + Send + 'static) -> Self {
        self.rule = Some(Box::new(rule));
        self
    }
}

/// Built-in rules.
pub mod rules {
    use super::*;

    /// Keep `numerator/denominator` inside `[low, high]` by scaling
    /// `knob`: above the band → multiply by `grow`, below → by `shrink`.
    /// (The generalization of the paper-era "keep scheduling overhead a
    /// small fraction of task duration" policy.)
    pub fn ratio_band(
        numerator: &'static str,
        denominator: &'static str,
        low: f64,
        high: f64,
        knob: Tunable,
        grow: f64,
        shrink: f64,
    ) -> impl FnMut(&PolicyContext<'_>) + Send {
        move |ctx| {
            let (Some(n), Some(d)) = (ctx.value(numerator), ctx.value(denominator)) else {
                return;
            };
            if d <= 0.0 {
                return;
            }
            let ratio = n / d;
            if ratio > high {
                knob.scale(grow);
            } else if ratio < low {
                knob.scale(shrink);
            }
        }
    }

    /// Clamp a knob down while `counter` exceeds `threshold`, release it
    /// back up otherwise (simple hysteresis throttle).
    pub fn threshold_throttle(
        counter: &'static str,
        threshold: f64,
        knob: Tunable,
    ) -> impl FnMut(&PolicyContext<'_>) + Send {
        move |ctx| {
            let Some(v) = ctx.value(counter) else { return };
            if v > threshold {
                knob.step(-1);
            } else {
                knob.step(1);
            }
        }
    }
}

struct ArmedPolicy {
    #[allow(dead_code)] // kept for debugger/diagnostic visibility
    name: String,
    resolved: Vec<(CounterName, Arc<dyn Counter>)>,
    period: Duration,
    reset_on_read: bool,
    rule: Rule,
    next_due: Duration,
    fires: u64,
}

/// Statistics the engine exposes about itself (observable through a
/// registry like everything else — the engine eats its own dog food).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Total policy firings.
    pub fires: AtomicU64,
    /// Total rule evaluation time, ns.
    pub rule_ns: AtomicU64,
}

/// The background policy evaluator; dropping it stops the thread.
pub struct PolicyEngine {
    stop: Arc<AtomicBool>,
    stats: Arc<EngineStats>,
    handle: Option<JoinHandle<()>>,
}

impl PolicyEngine {
    /// Resolve every policy's counters against `registry` and start the
    /// evaluation thread. Fails eagerly on unknown counters.
    pub fn start(
        registry: &Arc<CounterRegistry>,
        policies: Vec<Policy>,
    ) -> Result<Self, CounterError> {
        let mut armed = Vec::with_capacity(policies.len());
        for p in policies {
            let mut resolved = Vec::new();
            for spec in &p.counters {
                resolved.extend(registry.get_counters(spec)?);
            }
            armed.push(ArmedPolicy {
                name: p.name,
                resolved,
                period: p.period,
                reset_on_read: p.reset_on_read,
                rule: p.rule.unwrap_or_else(|| Box::new(|_| {})),
                next_due: Duration::ZERO,
                fires: 0,
            });
        }

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(EngineStats::default());
        let (stop2, stats2) = (stop.clone(), stats.clone());
        let clock = registry.clock();
        let handle = std::thread::Builder::new()
            .name("rpx-apex-policy-engine".into())
            .spawn(move || {
                let epoch = std::time::Instant::now();
                while !stop2.load(Ordering::Acquire) {
                    let now = epoch.elapsed();
                    let mut next_wake = now + Duration::from_millis(50);
                    for p in &mut armed {
                        if now >= p.next_due {
                            let readings: Vec<(CounterName, CounterValue)> = p
                                .resolved
                                .iter()
                                .map(|(n, c)| (n.clone(), c.get_value(p.reset_on_read)))
                                .collect();
                            let ctx = PolicyContext {
                                readings: &readings,
                                fires: p.fires,
                            };
                            let t0 = clock.now_ns();
                            (p.rule)(&ctx);
                            stats2
                                .rule_ns
                                .fetch_add(clock.now_ns().saturating_sub(t0), Ordering::Relaxed);
                            stats2.fires.fetch_add(1, Ordering::Relaxed);
                            p.fires += 1;
                            p.next_due = now + p.period;
                        }
                        next_wake = next_wake.min(p.next_due);
                    }
                    let sleep = next_wake
                        .saturating_sub(epoch.elapsed())
                        .min(Duration::from_millis(5));
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                    }
                }
            })
            .expect("failed to spawn policy engine thread");

        Ok(PolicyEngine {
            stop,
            stats,
            handle: Some(handle),
        })
    }

    /// Engine self-metrics.
    pub fn stats(&self) -> Arc<EngineStats> {
        self.stats.clone()
    }

    /// Register `/apex/{fires,rule-time}` counters for the engine itself.
    pub fn register_counters(&self, registry: &Arc<CounterRegistry>) {
        let s = self.stats.clone();
        registry.register_monotonic(
            "/apex/fires",
            "policy rule firings",
            "1",
            Arc::new(move || s.fires.load(Ordering::Relaxed) as i64),
        );
        let s = self.stats.clone();
        registry.register_monotonic(
            "/apex/rule-time",
            "cumulative time spent inside policy rules",
            "ns",
            Arc::new(move || s.rule_ns.load(Ordering::Relaxed) as i64),
        );
    }

    /// Stop the engine and join its thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PolicyEngine {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_gauge(initial: i64) -> (Arc<CounterRegistry>, Arc<AtomicI64>) {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(initial));
        let v2 = v.clone();
        reg.register_raw(
            "/app/metric",
            "m",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        (reg, v)
    }

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_millis(deadline_ms) {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn tunable_clamps_and_counts_changes() {
        let t = Tunable::new(5, 1, 10);
        assert_eq!(t.set(99), 10);
        assert_eq!(t.set(-3), 1);
        assert_eq!(t.step(100), 10);
        assert_eq!(t.scale(0.5), 5);
        assert_eq!(t.changes(), 4);
        assert_eq!(t.bounds(), (1, 10));
        // No-op sets don't count as changes.
        let before = t.changes();
        t.set(5);
        assert_eq!(t.changes(), before);
    }

    #[test]
    #[should_panic(expected = "empty tunable range")]
    fn inverted_bounds_panic() {
        let _ = Tunable::new(0, 5, 1);
    }

    #[test]
    fn engine_fires_and_adjusts_knob() {
        let (reg, gauge) = registry_with_gauge(100);
        let knob = Tunable::new(8, 1, 8);
        let k = knob.clone();
        let policy = Policy::new("throttle", vec!["/app/metric".into()])
            .with_period(Duration::from_millis(2))
            .with_reset(false)
            .with_rule(rules::threshold_throttle("/app/metric", 50.0, k));
        let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

        assert!(
            wait_until(2_000, || knob.get() <= 4),
            "knob should throttle under load"
        );
        // Load drops; the knob recovers.
        gauge.store(10, Ordering::Relaxed);
        assert!(wait_until(2_000, || knob.get() == 8), "knob should recover");
        engine.stop();
    }

    #[test]
    fn ratio_band_rule_steers_both_directions() {
        let reg = CounterRegistry::new();
        let num = Arc::new(AtomicI64::new(90));
        let den = Arc::new(AtomicI64::new(100));
        let (n2, d2) = (num.clone(), den.clone());
        reg.register_raw(
            "/r/num",
            "n",
            "1",
            Arc::new(move || n2.load(Ordering::Relaxed)),
        );
        reg.register_raw(
            "/r/den",
            "d",
            "1",
            Arc::new(move || d2.load(Ordering::Relaxed)),
        );
        let knob = Tunable::new(100, 1, 10_000);
        let k = knob.clone();
        let policy = Policy::new("band", vec!["/r/num".into(), "/r/den".into()])
            .with_period(Duration::from_millis(2))
            .with_reset(false)
            .with_rule(rules::ratio_band("/r/num", "/r/den", 0.1, 0.5, k, 2.0, 0.5));
        let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

        // ratio = 0.9 > 0.5 → knob grows.
        assert!(
            wait_until(2_000, || knob.get() >= 800),
            "knob should grow: {}",
            knob.get()
        );
        // ratio = 0.01 < 0.1 → knob shrinks.
        num.store(1, Ordering::Relaxed);
        assert!(
            wait_until(2_000, || knob.get() <= 100),
            "knob should shrink: {}",
            knob.get()
        );
        engine.stop();
    }

    #[test]
    fn per_interval_reset_isolates_firings() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_monotonic(
            "/m/count",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s2 = seen.clone();
        let policy = Policy::new("watch", vec!["/m/count".into()])
            .with_period(Duration::from_millis(3))
            .with_rule(move |ctx| {
                if let Some(x) = ctx.value("/m/count") {
                    s2.lock().push(x as i64);
                }
            });
        let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();
        for _ in 0..5 {
            v.fetch_add(10, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(4));
        }
        engine.stop();
        let observed: i64 = seen.lock().iter().sum();
        let remainder = reg.evaluate("/m/count", false).unwrap().value;
        assert_eq!(
            observed + remainder,
            50,
            "per-interval deltas must sum to the total"
        );
    }

    #[test]
    fn unknown_counter_fails_eagerly() {
        let reg = CounterRegistry::new();
        let policy = Policy::new("bad", vec!["/no/such".into()]);
        assert!(PolicyEngine::start(&reg, vec![policy]).is_err());
    }

    #[test]
    fn engine_self_counters() {
        let (reg, _gauge) = registry_with_gauge(1);
        let policy =
            Policy::new("noop", vec!["/app/metric".into()]).with_period(Duration::from_millis(1));
        let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();
        engine.register_counters(&reg);
        assert!(wait_until(2_000, || {
            reg.evaluate("/apex/fires", false)
                .map(|v| v.value >= 3)
                .unwrap_or(false)
        }));
        engine.stop();
    }

    #[test]
    fn context_sum_over_wildcards() {
        let reg = CounterRegistry::new();
        reg.register_raw("/a/x", "h", "1", Arc::new(|| 3));
        reg.register_raw("/a/y", "h", "1", Arc::new(|| 4));
        let readings = vec![
            ("/a/x".parse().unwrap(), CounterValue::new(3, 0)),
            ("/a/y".parse().unwrap(), CounterValue::new(4, 0)),
        ];
        let ctx = PolicyContext {
            readings: &readings,
            fires: 0,
        };
        assert_eq!(ctx.sum("/a/"), 7.0);
        assert_eq!(ctx.value("/a/y"), Some(4.0));
        assert_eq!(ctx.value("/nope"), None);
    }
}
