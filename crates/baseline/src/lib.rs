//! # rpx-baseline — the C++11 `std::async` baseline: one OS thread per task
//!
//! The comparison system of the paper. `spawn` creates a real operating
//! system thread per task (as GCC's `std::async` does), and a resource
//! model reproduces the paper's failure mode — programs aborting once
//! 80k–97k threads are concurrently live — deterministically and safely
//! (see DESIGN.md §3).
//!
//! ```
//! use rpx_baseline::BaselineRuntime;
//!
//! let rt = BaselineRuntime::with_defaults();
//! let f = rt.spawn(|| 6 * 7).unwrap();
//! assert_eq!(f.get(), 42);
//! ```

pub mod future;
pub mod runtime;

pub use future::ThreadFuture;
pub use runtime::{
    BaselineConfig, BaselineQuiesceReport, BaselineRuntime, BaselineStats, SpawnError,
};
