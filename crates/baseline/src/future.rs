//! Futures for the thread-per-task baseline: a thin wrapper over a value
//! slot plus the OS thread's join handle (C++ `std::future` semantics —
//! destruction joins the thread, as the GCC runtime does).

use std::any::Any;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

pub(crate) struct Slot<T> {
    pub value: Mutex<Option<Result<T, Box<dyn Any + Send>>>>,
    pub cond: Condvar,
}

impl<T> Slot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Slot {
            value: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    pub(crate) fn fill(&self, v: Result<T, Box<dyn Any + Send>>) {
        let mut g = self.value.lock();
        *g = Some(v);
        self.cond.notify_all();
    }
}

/// The result handle returned by [`BaselineRuntime::spawn`]
/// (`std::future` analogue).
///
/// [`BaselineRuntime::spawn`]: crate::runtime::BaselineRuntime::spawn
pub struct ThreadFuture<T> {
    pub(crate) slot: Arc<Slot<T>>,
    pub(crate) handle: Option<JoinHandle<()>>,
}

impl<T> ThreadFuture<T> {
    /// Whether the value is available without blocking.
    pub fn is_ready(&self) -> bool {
        self.slot.value.lock().is_some()
    }

    /// Block until the value is available (without consuming the future).
    pub fn wait(&self) {
        let mut g = self.slot.value.lock();
        while g.is_none() {
            self.slot.cond.wait(&mut g);
        }
    }

    /// Detach the task: the future is consumed without joining, the OS
    /// thread keeps running, and its completion is observed through
    /// [`BaselineRuntime::wait_idle`] / [`BaselineRuntime::quiesce`]
    /// instead of this handle. The runtime parity point of the real
    /// scheduler's fire-and-forget spawns (whose `TaskFuture` may be
    /// dropped while the task still runs); a detached task's panic is
    /// counted in `/os-threads/count/panicked` rather than silently lost.
    ///
    /// [`BaselineRuntime::wait_idle`]: crate::runtime::BaselineRuntime::wait_idle
    /// [`BaselineRuntime::quiesce`]: crate::runtime::BaselineRuntime::quiesce
    pub fn detach(mut self) {
        // Dropping a std JoinHandle detaches; our Drop impl joins, so take
        // the handle out first.
        drop(self.handle.take());
    }

    /// Wait for the value, join the backing OS thread, and return it.
    ///
    /// # Panics
    ///
    /// Re-raises the task's panic if the task panicked.
    pub fn get(mut self) -> T {
        self.wait();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let v = self
            .slot
            .value
            .lock()
            .take()
            .expect("value present after wait");
        match v {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

impl<T> Drop for ThreadFuture<T> {
    fn drop(&mut self) {
        // std::future from std::async blocks in its destructor.
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T> std::fmt::Debug for ThreadFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadFuture")
            .field("ready", &self.is_ready())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_get() {
        let slot = Slot::new();
        let f = ThreadFuture {
            slot: slot.clone(),
            handle: None,
        };
        assert!(!f.is_ready());
        slot.fill(Ok(5));
        assert!(f.is_ready());
        assert_eq!(f.get(), 5);
    }

    #[test]
    fn wait_blocks_until_fill() {
        let slot: Arc<Slot<i32>> = Slot::new();
        let s2 = slot.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            s2.fill(Ok(9));
        });
        let f = ThreadFuture { slot, handle: None };
        f.wait();
        assert_eq!(f.get(), 9);
        t.join().unwrap();
    }

    #[test]
    fn panic_propagates() {
        let slot: Arc<Slot<i32>> = Slot::new();
        slot.fill(Err(Box::new("kaboom")));
        let f = ThreadFuture { slot, handle: None };
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f.get())).is_err());
    }
}
