//! The thread-per-task baseline runtime.
//!
//! The GCC implementation of C++11 `std::async` "constructs, executes, and
//! destroys an Operating System thread for every task" (paper, §II). This
//! runtime does exactly that with `std::thread`, plus a resource model that
//! reproduces the failure mode the paper observed: with 8 MiB default
//! stacks, 80,000–97,000 concurrently-live pthreads exhaust memory and the
//! program aborts. The model tracks live threads and committed stack bytes
//! and fails the spawn (`SpawnError::ResourceExhausted`) at the same
//! budgets, so Table I/V "Abort" rows are reproduced deterministically
//! without actually taking the host down.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rpx_counters::CounterRegistry;

use crate::future::{Slot, ThreadFuture};

/// Why a spawn failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// The resource model rejected the spawn (the paper's Abort/SegV rows).
    ResourceExhausted {
        /// Live threads at the failed spawn.
        live_threads: usize,
        /// Committed stack bytes at the failed spawn.
        committed_stack: usize,
    },
    /// The operating system refused to create the thread.
    Os(String),
    /// The runtime is draining ([`BaselineRuntime::quiesce`] was called)
    /// and admits no new tasks — the parity twin of the real runtime's
    /// `SpawnError::Draining`.
    Draining,
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::ResourceExhausted {
                live_threads,
                committed_stack,
            } => write!(
                f,
                "thread resources exhausted: {live_threads} live threads, \
                 {committed_stack} bytes of stack committed"
            ),
            SpawnError::Os(e) => write!(f, "OS thread creation failed: {e}"),
            SpawnError::Draining => write!(f, "runtime is draining; spawn rejected"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// Resource model configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Per-thread stack reservation counted against the memory budget.
    /// Default 8 MiB (glibc default, what the paper's system used).
    pub stack_bytes: usize,
    /// Actual stack size given to `std::thread` (kept small so tests can
    /// reach high thread counts without swapping the host).
    pub real_stack_bytes: usize,
    /// Maximum concurrently live threads before spawns fail.
    /// The paper observed failures at 80k–97k live pthreads.
    pub max_live_threads: usize,
    /// Memory budget for stacks; spawns fail when exceeded.
    pub memory_budget_bytes: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            stack_bytes: 8 << 20,
            real_stack_bytes: 256 << 10,
            max_live_threads: 90_000,
            // 64 GiB of RAM+swap-ish virtual budget, as on the paper's node.
            memory_budget_bytes: 64 << 30,
        }
    }
}

impl BaselineConfig {
    /// A tight configuration for tests: fail beyond `max_live` threads.
    pub fn with_live_limit(max_live: usize) -> Self {
        BaselineConfig {
            max_live_threads: max_live,
            ..BaselineConfig::default()
        }
    }
}

/// Accounting shared with counters and the harness.
#[derive(Debug, Default)]
pub struct BaselineStats {
    /// Total tasks spawned successfully.
    pub spawned: AtomicU64,
    /// Tasks finished.
    pub completed: AtomicU64,
    /// Currently live task threads.
    pub live: AtomicUsize,
    /// High-water mark of live threads.
    pub peak_live: AtomicUsize,
    /// Cumulative nanoseconds spent inside `std::thread::spawn` calls —
    /// the baseline's "scheduling overhead".
    pub spawn_ns: AtomicU64,
    /// Spawns rejected by the resource model.
    pub failed_spawns: AtomicU64,
    /// Tasks that panicked. A panic still propagates through
    /// [`ThreadFuture::get`]; for detached tasks this count (and the
    /// `/os-threads/count/panicked` counter) is the only trace, mirroring
    /// the real runtime's recovered-panic health accounting.
    pub panicked: AtomicU64,
}

/// The idle rendezvous: task threads notify on completion, so
/// [`BaselineRuntime::wait_idle`] / [`BaselineRuntime::quiesce`] can block
/// without polling. Kept outside [`BaselineStats`] so the stats block stays
/// a plain bundle of atomics.
#[derive(Default)]
struct IdleSignal {
    lock: Mutex<()>,
    cv: Condvar,
}

impl IdleSignal {
    fn notify(&self) {
        // Take the lock so the notification cannot race between a waiter's
        // predicate check and its park (classic lost-wakeup window).
        let _g = self.lock.lock();
        self.cv.notify_all();
    }
}

impl BaselineStats {
    /// Reserve a live slot *before* thread creation so the task thread's
    /// `note_finish` can never observe (and underflow) a count that does
    /// not yet include it.
    fn reserve_live(&self) {
        let live = self.live.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak_live.fetch_max(live, Ordering::AcqRel);
    }

    fn release_live(&self) {
        self.live.fetch_sub(1, Ordering::AcqRel);
    }

    fn note_spawned(&self, ns: u64) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        self.spawn_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn note_finish(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.release_live();
    }
}

/// Outcome of a [`BaselineRuntime::quiesce`] drain, mirroring the real
/// runtime's `QuiesceReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineQuiesceReport {
    /// Whether every live task thread finished within the deadline.
    pub drained: bool,
    /// Task threads still live when the drain gave up.
    pub remaining: u64,
    /// Total tasks completed over the runtime's lifetime.
    pub completed: u64,
    /// Total task panics over the runtime's lifetime (see
    /// [`BaselineStats::panicked`]).
    pub panicked: u64,
}

/// The `std::async`-style runtime: one OS thread per spawned task.
pub struct BaselineRuntime {
    config: BaselineConfig,
    stats: Arc<BaselineStats>,
    registry: Arc<CounterRegistry>,
    idle: Arc<IdleSignal>,
    draining: AtomicBool,
}

impl BaselineRuntime {
    /// Build with the given resource model.
    pub fn new(config: BaselineConfig) -> Self {
        let stats = Arc::new(BaselineStats::default());
        let registry = CounterRegistry::new();
        register_baseline_counters(&registry, &stats);
        BaselineRuntime {
            config,
            stats,
            registry,
            idle: Arc::new(IdleSignal::default()),
            draining: AtomicBool::new(false),
        }
    }

    /// Build with the default (paper-scale) resource model.
    pub fn with_defaults() -> Self {
        BaselineRuntime::new(BaselineConfig::default())
    }

    /// Spawn `f` "as if on a new thread" — literally on a new thread.
    pub fn spawn<T, F>(&self, f: F) -> Result<ThreadFuture<T>, SpawnError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.draining.load(Ordering::Acquire) {
            self.stats.failed_spawns.fetch_add(1, Ordering::Relaxed);
            return Err(SpawnError::Draining);
        }
        let live = self.stats.live.load(Ordering::Acquire);
        let committed = live * self.config.stack_bytes;
        if live >= self.config.max_live_threads
            || committed + self.config.stack_bytes > self.config.memory_budget_bytes
        {
            self.stats.failed_spawns.fetch_add(1, Ordering::Relaxed);
            return Err(SpawnError::ResourceExhausted {
                live_threads: live,
                committed_stack: committed,
            });
        }

        let slot = Slot::new();
        let slot2 = slot.clone();
        let stats = self.stats.clone();
        let idle = self.idle.clone();
        self.stats.reserve_live();
        let t0 = std::time::Instant::now();
        let handle = std::thread::Builder::new()
            .stack_size(self.config.real_stack_bytes)
            .spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                if result.is_err() {
                    stats.panicked.fetch_add(1, Ordering::Relaxed);
                }
                slot2.fill(result);
                stats.note_finish();
                idle.notify();
            })
            .map_err(|e| {
                self.stats.release_live();
                self.stats.failed_spawns.fetch_add(1, Ordering::Relaxed);
                SpawnError::Os(e.to_string())
            })?;
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.note_spawned(ns);
        Ok(ThreadFuture {
            slot,
            handle: Some(handle),
        })
    }

    /// The accounting block (live threads, spawn cost, failures).
    pub fn stats(&self) -> Arc<BaselineStats> {
        self.stats.clone()
    }

    /// Block until no task thread is live — the parity twin of the real
    /// runtime's `wait_idle`, needed because [`ThreadFuture::detach`]ed
    /// tasks have no handle left to join.
    pub fn wait_idle(&self) {
        let mut guard = self.idle.lock.lock();
        while self.stats.live.load(Ordering::Acquire) > 0 {
            self.idle.cv.wait(&mut guard);
        }
    }

    /// Like [`wait_idle`](Self::wait_idle) with a timeout; returns whether
    /// the runtime went idle.
    fn wait_idle_for(&self, timeout: Duration) -> bool {
        let t0 = Instant::now();
        let mut guard = self.idle.lock.lock();
        while self.stats.live.load(Ordering::Acquire) > 0 {
            let remaining = timeout.saturating_sub(t0.elapsed());
            if remaining.is_zero() {
                return false;
            }
            let _ = self.idle.cv.wait_for(&mut guard, remaining);
        }
        true
    }

    /// Gracefully drain, mirroring the real runtime's quiesce protocol as
    /// far as OS threads allow: stop admission (spawns now fail with
    /// [`SpawnError::Draining`]), then wait up to `deadline` for live task
    /// threads to finish. There is no cancel step — a `pthread` cannot be
    /// cancelled at dispatch — so stragglers are reported in `remaining`
    /// instead. Panics absorbed by detached tasks surface in `panicked`.
    pub fn quiesce(&self, deadline: Duration) -> BaselineQuiesceReport {
        self.draining.store(true, Ordering::SeqCst);
        let drained = self.wait_idle_for(deadline);
        BaselineQuiesceReport {
            drained,
            remaining: self.stats.live.load(Ordering::Acquire) as u64,
            completed: self.stats.completed.load(Ordering::Relaxed),
            panicked: self.stats.panicked.load(Ordering::Relaxed),
        }
    }

    /// The baseline's (much smaller) counter registry. The point of the
    /// paper is that the real `std::async` has *no* such introspection;
    /// these counters exist so the harness can report the baseline's
    /// behaviour without external tools.
    pub fn registry(&self) -> Arc<CounterRegistry> {
        self.registry.clone()
    }

    /// The resource model in effect.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }
}

impl Default for BaselineRuntime {
    fn default() -> Self {
        BaselineRuntime::with_defaults()
    }
}

fn register_baseline_counters(registry: &Arc<CounterRegistry>, stats: &Arc<BaselineStats>) {
    let s = stats.clone();
    registry.register_monotonic(
        "/os-threads/count/cumulative",
        "OS threads created for tasks",
        "1",
        Arc::new(move || s.spawned.load(Ordering::Relaxed) as i64),
    );
    let s = stats.clone();
    registry.register_raw(
        "/os-threads/count/instantaneous",
        "currently live task threads",
        "1",
        Arc::new(move || s.live.load(Ordering::Relaxed) as i64),
    );
    let s = stats.clone();
    registry.register_raw(
        "/os-threads/count/peak",
        "high-water mark of live task threads",
        "1",
        Arc::new(move || s.peak_live.load(Ordering::Relaxed) as i64),
    );
    let s = stats.clone();
    registry.register_average(
        "/os-threads/time/average-spawn",
        "average cost of one std::thread spawn (the baseline's task overhead)",
        "ns",
        Arc::new(move || {
            (
                s.spawn_ns.load(Ordering::Relaxed),
                s.spawned.load(Ordering::Relaxed),
            )
        }),
    );
    let s = stats.clone();
    registry.register_monotonic(
        "/os-threads/count/failed",
        "spawns rejected by the resource model",
        "1",
        Arc::new(move || s.failed_spawns.load(Ordering::Relaxed) as i64),
    );
    let s = stats.clone();
    registry.register_monotonic(
        "/os-threads/count/panicked",
        "task panics (propagated by get(), otherwise only visible here)",
        "1",
        Arc::new(move || s.panicked.load(Ordering::Relaxed) as i64),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_runs_on_new_thread() {
        let rt = BaselineRuntime::with_defaults();
        let here = std::thread::current().id();
        let f = rt
            .spawn(move || std::thread::current().id() != here)
            .unwrap();
        assert!(f.get(), "task must run on a different OS thread");
    }

    #[test]
    fn resource_limit_fails_spawn() {
        let rt = BaselineRuntime::new(BaselineConfig::with_live_limit(4));
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let mut futures = Vec::new();
        for _ in 0..4 {
            let g = gate.clone();
            futures.push(
                rt.spawn(move || {
                    let _ = g.lock(); // block until the gate opens
                })
                .unwrap(),
            );
        }
        // Wait for all 4 to be live.
        while rt.stats().live.load(Ordering::Acquire) < 4 {
            std::thread::yield_now();
        }
        let err = rt.spawn(|| ()).unwrap_err();
        assert!(matches!(
            err,
            SpawnError::ResourceExhausted {
                live_threads: 4,
                ..
            }
        ));
        assert_eq!(rt.stats().failed_spawns.load(Ordering::Relaxed), 1);
        drop(held);
        for f in futures {
            f.get();
        }
    }

    #[test]
    fn memory_budget_fails_spawn() {
        let rt = BaselineRuntime::new(BaselineConfig {
            stack_bytes: 8 << 20,
            memory_budget_bytes: 3 * (8 << 20), // 3 stacks
            max_live_threads: 1_000_000,
            real_stack_bytes: 128 << 10,
        });
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let mut futures = Vec::new();
        for _ in 0..3 {
            let g = gate.clone();
            futures.push(rt.spawn(move || drop(g.lock())).unwrap());
        }
        while rt.stats().live.load(Ordering::Acquire) < 3 {
            std::thread::yield_now();
        }
        assert!(rt.spawn(|| ()).is_err());
        drop(held);
        for f in futures {
            f.get();
        }
    }

    #[test]
    fn stats_track_lifecycle() {
        let rt = BaselineRuntime::with_defaults();
        let futures: Vec<_> = (0..20).map(|i| rt.spawn(move || i).unwrap()).collect();
        let sum: i32 = futures.into_iter().map(|f| f.get()).sum();
        assert_eq!(sum, (0..20).sum::<i32>());
        let stats = rt.stats();
        assert_eq!(stats.spawned.load(Ordering::Relaxed), 20);
        // All futures were joined by get().
        assert_eq!(stats.completed.load(Ordering::Relaxed), 20);
        assert_eq!(stats.live.load(Ordering::Relaxed), 0);
        assert!(stats.peak_live.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn spawn_cost_counter_is_visible() {
        let rt = BaselineRuntime::with_defaults();
        let futures: Vec<_> = (0..10).map(|_| rt.spawn(|| ()).unwrap()).collect();
        for f in futures {
            f.get();
        }
        let v = rt
            .registry()
            .evaluate("/os-threads/time/average-spawn", false)
            .unwrap();
        assert!(v.value > 0, "thread spawn must cost measurable time");
        let c = rt
            .registry()
            .evaluate("/os-threads/count/cumulative", false)
            .unwrap();
        assert_eq!(c.value, 10);
    }

    #[test]
    fn panic_in_task_propagates() {
        let rt = BaselineRuntime::with_defaults();
        let f = rt
            .spawn(|| -> i32 { panic!("thread task panicked") })
            .unwrap();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f.get())).is_err());
        // live count still returns to zero.
        while rt.stats().live.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        assert_eq!(rt.stats().panicked.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wait_idle_observes_detached_tasks() {
        // Regression (Backend-trait parity): fire-and-forget spawns used to
        // be impossible — dropping the future joined the thread inline.
        let rt = BaselineRuntime::with_defaults();
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let d = done.clone();
            rt.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                d.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap()
            .detach();
        }
        rt.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 10);
        assert_eq!(rt.stats().live.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn detached_panic_is_counted_not_lost() {
        // Regression: a detached task's panic used to vanish into the
        // dropped result slot with no trace anywhere.
        let rt = BaselineRuntime::with_defaults();
        rt.spawn(|| panic!("detached boom")).unwrap().detach();
        rt.spawn(|| ()).unwrap().detach();
        rt.wait_idle();
        assert_eq!(rt.stats().panicked.load(Ordering::Relaxed), 1);
        let v = rt
            .registry()
            .evaluate("/os-threads/count/panicked", false)
            .unwrap();
        assert_eq!(v.value, 1);
        // The runtime survives, like the real scheduler after a recovered
        // task panic.
        assert_eq!(rt.spawn(|| 3).unwrap().get(), 3);
    }

    #[test]
    fn quiesce_drains_and_closes_admission() {
        let rt = BaselineRuntime::with_defaults();
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let held = gate.lock();
        let g = gate.clone();
        rt.spawn(move || drop(g.lock())).unwrap().detach();
        while rt.stats().live.load(Ordering::Acquire) < 1 {
            std::thread::yield_now();
        }
        // Deadline elapses while the task blocks on the gate.
        let stuck = rt.quiesce(std::time::Duration::from_millis(10));
        assert!(!stuck.drained);
        assert_eq!(stuck.remaining, 1);
        // Admission is closed from the first quiesce call on.
        assert!(matches!(rt.spawn(|| ()), Err(SpawnError::Draining)));
        drop(held);
        let report = rt.quiesce(std::time::Duration::from_secs(5));
        assert!(report.drained, "gate released; drain must finish");
        assert_eq!(report.remaining, 0);
        assert_eq!(report.completed, 1);
        assert_eq!(report.panicked, 0);
    }
}
