//! Views: the happens-before bookkeeping behind the engine's C11-style
//! weak-memory model (see DESIGN.md §"model checker").
//!
//! A view maps a memory location (by address) to an index into that
//! location's modification order. A thread's view is its visibility
//! floor: it can never read a store older than `view[loc]`. Release
//! stores attach the writer's view; acquire loads join the attached view
//! into the reader's — exactly the view-based operational formulation of
//! release/acquire used by C11 model checkers.

use std::collections::HashMap;

/// Per-location visibility floor. Missing locations are index 0 (the
/// initial value is visible to everyone).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct View(HashMap<usize, usize>);

impl View {
    pub(crate) fn new() -> Self {
        View(HashMap::new())
    }

    /// Modification-order floor for location `addr`.
    pub(crate) fn get(&self, addr: usize) -> usize {
        self.0.get(&addr).copied().unwrap_or(0)
    }

    /// Raise the floor of `addr` to at least `idx`.
    pub(crate) fn set_max(&mut self, addr: usize, idx: usize) {
        let e = self.0.entry(addr).or_insert(0);
        *e = (*e).max(idx);
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub(crate) fn join(&mut self, other: &View) {
        for (&addr, &idx) in &other.0 {
            self.set_max(addr, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::View;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = View::new();
        a.set_max(0x10, 2);
        let mut b = View::new();
        b.set_max(0x10, 1);
        b.set_max(0x20, 3);
        a.join(&b);
        assert_eq!(a.get(0x10), 2);
        assert_eq!(a.get(0x20), 3);
    }

    #[test]
    fn missing_locations_read_zero() {
        let v = View::new();
        assert_eq!(v.get(0x30), 0);
    }

    #[test]
    fn set_max_never_lowers() {
        let mut v = View::new();
        v.set_max(0x10, 5);
        v.set_max(0x10, 2);
        assert_eq!(v.get(0x10), 5);
    }
}
