//! The exploration engine: serialized execution of real OS threads with a
//! token-passing scheduler, a C11-style weak-memory model over
//! per-location views, DFS + random-walk interleaving exploration with a
//! CHESS-style preemption bound, and deadlock/livelock detection.
//!
//! Execution model: at most one model thread runs at any instant. Every
//! instrumented operation (atomic access, fence, lock, condvar, spawn,
//! join, spin hint) is a *yield point*: the thread performs the operation
//! while holding the global token, then the scheduler chooses which thread
//! runs next. All nondeterminism — schedule choices and which store a
//! weak load reads — flows through a single `choose(n)` source, so an
//! execution is fully determined by its choice trail (DFS mode) or its
//! seed (random-walk mode).
//!
//! Memory model: each location keeps its full modification order; each
//! thread keeps a *view* (per-location floor into those orders). A load
//! picks any store at or above the floor; release stores attach the
//! writer's view and acquire loads join it, which is exactly how
//! release/acquire publication constrains what a reader may subsequently
//! observe. Fences (acquire/release/SeqCst) and release sequences follow
//! the standard view-based formulation.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::{
    Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsMutexGuard, OnceLock,
};
use std::time::Duration;

use crate::clock::View;

/// Consecutive times a thread may re-read the same stale store of one
/// location before the engine forces it to read the latest store. This is
/// a deliberate under-approximation that keeps spin-wait loops finite; see
/// DESIGN.md §"model checker".
const STALE_STREAK_CAP: u32 = 2;

/// Trace ring size (last events shown in a failure report).
const TRACE_KEEP: usize = 48;

// ---------------------------------------------------------------------
// Public configuration and results
// ---------------------------------------------------------------------

/// Exploration budget and bounds for one spec.
#[derive(Clone, Debug)]
pub struct Config {
    /// CHESS-style preemption bound: the number of times the scheduler may
    /// switch away from a thread that could have continued. Non-preemptive
    /// switches (blocking, finishing, voluntary spin yields) are free.
    pub preemption_bound: u32,
    /// DFS executions explored before falling back to random walks.
    pub max_executions: u64,
    /// Seeded random-walk executions run after the DFS budget.
    pub random_walks: u64,
    /// Per-execution step budget; exceeding it is reported as a livelock.
    pub max_steps: u64,
    /// Base seed for the random-walk phase (walk `k` uses a mix of this
    /// and `k`). Overridden by `RPX_MODEL_SEED_BASE`.
    pub base_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_executions: 4000,
            random_walks: 400,
            max_steps: 20_000,
            base_seed: 0x5eed,
        }
    }
}

impl Config {
    /// Apply environment overrides (`RPX_MODEL_SEED_BASE`,
    /// `RPX_MODEL_WALKS`, `RPX_MODEL_EXECUTIONS`).
    fn with_env(mut self) -> Self {
        if let Some(v) = env_u64("RPX_MODEL_SEED_BASE") {
            self.base_seed = v;
        }
        if let Some(v) = env_u64("RPX_MODEL_WALKS") {
            self.random_walks = v;
        }
        if let Some(v) = env_u64("RPX_MODEL_EXECUTIONS") {
            self.max_executions = v;
        }
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// A property violation found by the checker, with everything needed to
/// reproduce it.
#[derive(Debug)]
pub struct Failure {
    /// The failed assertion / detected condition.
    pub message: String,
    /// Random-walk seed, when found in the random phase (replayable via
    /// `RPX_TEST_SEED`). `None` for the deterministic DFS phase.
    pub seed: Option<u64>,
    /// Zero-based execution index within its phase.
    pub execution: u64,
    /// The choice trail of the failing execution (`chosen/arity` pairs).
    pub trail: String,
    /// The last few scheduler/memory events before the failure.
    pub trace: Vec<String>,
}

impl Failure {
    /// Multi-line human report with a one-line reproduction command.
    pub fn render(&self, name: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "rpx-model: spec `{name}` failed: {}", self.message);
        match self.seed {
            Some(seed) => {
                let _ = writeln!(
                    s,
                    "found in random walk #{} — reproduce with: RPX_TEST_SEED={seed:#x} \
                     RUSTFLAGS=\"--cfg rpx_model\" cargo test {name}",
                    self.execution
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "found in deterministic DFS execution #{} — rerunning the test reproduces it \
                     (trail {})",
                    self.execution, self.trail
                );
            }
        }
        let _ = writeln!(s, "last events before failure:");
        for line in &self.trace {
            let _ = writeln!(s, "  {line}");
        }
        s
    }
}

/// Summary of a completed (no-failure) exploration.
#[derive(Debug, Default)]
pub struct Report {
    /// Executions explored across both phases.
    pub executions: u64,
    /// Whether DFS exhausted the (preemption-bounded) schedule space.
    pub dfs_complete: bool,
}

// ---------------------------------------------------------------------
// Choice source
// ---------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

enum Chooser {
    /// Replays a trail prefix, then extends it with first-choice (0)
    /// entries. The driver advances the trail between executions.
    Dfs {
        trail: Vec<(u32, u32)>,
        pos: usize,
    },
    Random {
        state: u64,
    },
}

impl Chooser {
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1, "choose(0) has no valid outcome");
        if n <= 1 {
            return 0;
        }
        match self {
            Chooser::Dfs { trail, pos } => {
                let c = if *pos < trail.len() {
                    trail[*pos].0
                } else {
                    trail.push((0, n as u32));
                    0
                };
                *pos += 1;
                (c as usize).min(n - 1)
            }
            Chooser::Random { state } => (splitmix64(state) % n as u64) as usize,
        }
    }
}

/// Advance a DFS trail to the next unexplored execution; `false` when the
/// (bounded) space is exhausted.
fn advance_trail(trail: &mut Vec<(u32, u32)>) -> bool {
    while let Some((c, n)) = trail.last_mut() {
        if *c + 1 < *n {
            *c += 1;
            return true;
        }
        trail.pop();
    }
    false
}

fn trail_string(trail: &[(u32, u32)]) -> String {
    let mut s = String::new();
    for (i, (c, n)) in trail.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        let _ = write!(s, "{c}/{n}");
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

/// One store in a location's modification order.
struct Store {
    val: u64,
    /// View transferred to acquire readers: the writer's full view for
    /// release stores, its last release-fence view (plus this store) for
    /// relaxed stores, additionally joined with the replaced store's view
    /// for RMWs (which continue the release sequence).
    rel: View,
}

#[derive(Default)]
struct ReaderState {
    /// Index this thread last read here (staleness detection only — the
    /// coherence floor lives in the thread's view).
    last_idx: usize,
    streak: u32,
}

struct Loc {
    history: Vec<Store>,
    /// Index of the latest `SeqCst` store: `SeqCst` loads never read below
    /// it — the single total order realized by this serialized engine.
    sc_floor: usize,
    readers: HashMap<usize, ReaderState>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Block {
    Mutex(usize),
    RwRead(usize),
    RwWrite(usize),
    Cv { cv: usize, timed: bool },
    Join(usize),
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum ThState {
    Runnable,
    Blocked(Block),
    Finished,
}

struct Th {
    state: ThState,
    /// Visibility floor (per-location) — everything this thread is
    /// guaranteed to observe.
    view: View,
    /// Join of the `rel` views of every store this thread has read
    /// (acquire *fences* sync with them retroactively).
    read_view: View,
    /// View at this thread's last release fence (attached to its
    /// subsequent relaxed stores).
    fence_rel: View,
    /// Set by a voluntary spin yield; deprioritizes the thread until a
    /// store (someone's progress) clears the flags.
    yielded: bool,
    /// Set when the scheduler wakes a timed wait via its timeout.
    timeout_fired: bool,
}

impl Th {
    fn new() -> Self {
        Th {
            state: ThState::Runnable,
            view: View::new(),
            read_view: View::new(),
            fence_rel: View::new(),
            yielded: false,
            timeout_fired: false,
        }
    }
}

#[derive(Default)]
struct Mux {
    owner: Option<usize>,
    rel: View,
}

#[derive(Default)]
struct Rw {
    writer: Option<usize>,
    /// One entry per live read guard (the same thread may hold several:
    /// recursive reads must not self-deadlock).
    readers: Vec<usize>,
    rel: View,
}

struct Exec {
    threads: Vec<Th>,
    current: usize,
    locs: HashMap<usize, Loc>,
    muxes: HashMap<usize, Mux>,
    rws: HashMap<usize, Rw>,
    /// Join of every SC operation's view; only SC *fences* read it.
    sc_view: View,
    chooser: Chooser,
    preemptions: u32,
    preemption_bound: u32,
    max_steps: u64,
    steps: u64,
    failure: Option<String>,
    trace: VecDeque<String>,
    done: bool,
}

impl Exec {
    fn new(chooser: Chooser, cfg: &Config) -> Self {
        Exec {
            threads: vec![Th::new()],
            current: 0,
            locs: HashMap::new(),
            muxes: HashMap::new(),
            rws: HashMap::new(),
            sc_view: View::new(),
            chooser,
            preemptions: 0,
            preemption_bound: cfg.preemption_bound,
            max_steps: cfg.max_steps,
            steps: 0,
            failure: None,
            trace: VecDeque::new(),
            done: false,
        }
    }

    fn note(&mut self, line: String) {
        if self.trace.len() == TRACE_KEEP {
            self.trace.pop_front();
        }
        self.trace.push_back(line);
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.done = true;
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThState::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Charge one step to the current thread; trips the livelock bound.
    fn step(&mut self) {
        self.steps += 1;
        if self.steps > self.max_steps {
            let state = self.describe_threads();
            self.fail(format!(
                "step budget ({}) exceeded — livelock or unbounded spin; threads: {state}",
                self.max_steps
            ));
        }
    }

    fn describe_threads(&self) -> String {
        let mut s = String::new();
        for (i, t) in self.threads.iter().enumerate() {
            let _ = write!(s, "t{i}={:?} ", t.state);
        }
        s
    }

    /// Pick the next thread to run after `self.current` completed an
    /// operation (or blocked/finished). `voluntary` marks spin yields,
    /// which never count as preemptions.
    fn reschedule(&mut self, voluntary: bool) {
        if self.done {
            return;
        }
        let prev = self.current;
        let runnable = self.runnable();
        if runnable.is_empty() {
            if self.threads.iter().all(|t| t.state == ThState::Finished) {
                self.done = true;
                return;
            }
            // Timed waits are woken lazily: only when nothing else can
            // run does a timeout fire (this explores "timeout raced the
            // wakeup" without branching on every timed wait).
            let timed: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.state, ThState::Blocked(Block::Cv { timed: true, .. })))
                .map(|(i, _)| i)
                .collect();
            if !timed.is_empty() {
                let k = self.chooser.choose(timed.len());
                let tid = timed[k];
                self.threads[tid].timeout_fired = true;
                self.threads[tid].state = ThState::Runnable;
                self.current = tid;
                self.note(format!("t{tid} woken by timeout"));
                return;
            }
            let state = self.describe_threads();
            self.fail(format!(
                "deadlock: every live thread is blocked; threads: {state}"
            ));
            return;
        }

        let prev_runnable = self.threads[prev].state == ThState::Runnable;
        let mut cands: Vec<usize>;
        if prev_runnable && !voluntary && self.preemptions >= self.preemption_bound {
            // Out of preemptions: the previous thread must continue.
            cands = vec![prev];
        } else {
            let fresh: Vec<usize> = runnable
                .iter()
                .copied()
                .filter(|&t| !self.threads[t].yielded)
                .collect();
            cands = if fresh.is_empty() {
                for t in &mut self.threads {
                    t.yielded = false;
                }
                runnable
            } else {
                fresh
            };
            if voluntary && cands.len() > 1 {
                cands.retain(|&t| t != prev);
            }
        }
        let k = self.chooser.choose(cands.len());
        let next = cands[k];
        if next != prev && prev_runnable && !voluntary {
            self.preemptions += 1;
        }
        self.current = next;
    }

    fn loc_mut(&mut self, addr: usize, init: u64) -> &mut Loc {
        self.locs.entry(addr).or_insert_with(|| Loc {
            history: vec![Store {
                val: init,
                rel: View::new(),
            }],
            sc_floor: 0,
            readers: HashMap::new(),
        })
    }

    /// Stores are progress: clear voluntary-yield flags so spinners get
    /// rescheduled and can observe the new value.
    fn clear_yields(&mut self) {
        for t in &mut self.threads {
            t.yielded = false;
        }
    }

    fn wake_blocked(&mut self, pred: impl Fn(&Block) -> bool) {
        for t in &mut self.threads {
            if let ThState::Blocked(b) = &t.state {
                if pred(b) {
                    t.state = ThState::Runnable;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Global engine: one execution at a time, shared by all model threads
// ---------------------------------------------------------------------

struct EngineInner {
    exec: Option<Exec>,
    epoch: u64,
}

struct Engine {
    m: OsMutex<EngineInner>,
    cv: OsCondvar,
}

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine {
        m: OsMutex::new(EngineInner {
            exec: None,
            epoch: 0,
        }),
        cv: OsCondvar::new(),
    })
}

thread_local! {
    /// `(tid, epoch)` of the model thread running on this OS thread.
    static MODEL_TID: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
}

/// Whether the calling OS thread is a model thread inside an execution.
/// The adaptive facade primitives route through the engine exactly when
/// this is true, and behave like plain `std` otherwise.
pub fn in_model() -> bool {
    MODEL_TID.with(|c| c.get().is_some())
}

fn lock_engine() -> OsMutexGuard<'static, EngineInner> {
    engine().m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Park forever: this OS thread belongs to an abandoned execution (a
/// failure was recorded, or the driver moved on). Its stack — including
/// any user frames — is intentionally leaked; the thread is reclaimed at
/// process exit. Bounded: explorations stop at the first failure.
fn zombie_park(mut g: OsMutexGuard<'static, EngineInner>) -> ! {
    loop {
        g = engine().cv.wait(g).unwrap_or_else(|p| p.into_inner());
    }
}

fn my_tid(g: &OsMutexGuard<'static, EngineInner>) -> (usize, u64) {
    let (tid, epoch) = MODEL_TID
        .with(|c| c.get())
        .expect("engine entered from a non-model thread");
    debug_assert!(g.epoch >= epoch);
    (tid, epoch)
}

/// Block until this thread holds the run token (and the execution is still
/// live). Never returns for abandoned executions.
fn wait_for_token(
    mut g: OsMutexGuard<'static, EngineInner>,
) -> (OsMutexGuard<'static, EngineInner>, usize) {
    loop {
        let (tid, epoch) = my_tid(&g);
        let stale = g.epoch != epoch
            || match g.exec.as_ref() {
                None => true,
                Some(e) => e.failure.is_some() || e.done,
            };
        if stale {
            zombie_park(g);
        }
        let e = g.exec.as_ref().expect("checked above");
        if e.current == tid && e.threads[tid].state == ThState::Runnable {
            return (g, tid);
        }
        g = engine().cv.wait(g).unwrap_or_else(|p| p.into_inner());
    }
}

/// Run one instrumented operation: acquire the token, charge a step,
/// perform `f`, reschedule, and (if the token moved) wait to get it back
/// before returning to user code.
fn op<R>(voluntary: bool, f: impl FnOnce(&mut Exec, usize) -> R) -> R {
    let g = lock_engine();
    let (mut g, tid) = wait_for_token(g);
    let e = g.exec.as_mut().expect("token implies live execution");
    e.step();
    if e.done {
        engine().cv.notify_all();
        zombie_park(g);
    }
    let r = f(e, tid);
    e.reschedule(voluntary);
    engine().cv.notify_all();
    if e.done {
        zombie_park(g);
    }
    if e.current != tid {
        let (g2, _) = wait_for_token(g);
        g = g2;
    }
    drop(g);
    r
}

// ---------------------------------------------------------------------
// Ordering helpers
// ---------------------------------------------------------------------

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_sc(ord: Ordering) -> bool {
    ord == Ordering::SeqCst
}

// ---------------------------------------------------------------------
// Atomic operations (called from the facade types in `sync`)
// ---------------------------------------------------------------------

pub(crate) fn atomic_load(addr: usize, init: u64, ord: Ordering, name: &'static str) -> u64 {
    op(false, |e, tid| {
        let view_floor = e.threads[tid].view.get(addr);
        let loc = e.loc_mut(addr, init);
        let latest = loc.history.len() - 1;
        let mut lo = view_floor.min(latest);
        if is_sc(ord) {
            lo = lo.max(loc.sc_floor);
        }
        let rs = loc.readers.entry(tid).or_default();
        let prev_last = rs.last_idx;
        let forced = rs.streak >= STALE_STREAK_CAP && lo < latest;
        let choices: Vec<usize> = if forced {
            vec![latest]
        } else {
            (lo..=latest).collect()
        };
        let k = e.chooser.choose(choices.len());
        let idx = choices[k];
        let loc = e.locs.get_mut(&addr).expect("just inserted");
        let rs = loc.readers.entry(tid).or_default();
        rs.streak = if idx == prev_last && idx != latest {
            rs.streak + 1
        } else {
            0
        };
        rs.last_idx = idx;
        let (val, rel) = {
            let s = &loc.history[idx];
            (s.val, s.rel.clone())
        };
        if is_sc(ord) {
            loc.sc_floor = loc.sc_floor.max(idx);
        }
        let th = &mut e.threads[tid];
        th.view.set_max(addr, idx);
        th.read_view.join(&rel);
        if is_acquire(ord) {
            th.view.join(&rel);
        }
        if is_sc(ord) {
            let v = e.threads[tid].view.clone();
            e.sc_view.join(&v);
        }
        e.note(format!("t{tid} load {name} -> {val} ({ord:?})"));
        val
    })
}

pub(crate) fn atomic_store(
    addr: usize,
    init: u64,
    val: u64,
    ord: Ordering,
    name: &'static str,
    mirror: &dyn Fn(u64),
) {
    op(false, |e, tid| {
        let idx = e.loc_mut(addr, init).history.len();
        let th = &mut e.threads[tid];
        th.view.set_max(addr, idx);
        let rel = if is_release(ord) {
            th.view.clone()
        } else {
            let mut r = th.fence_rel.clone();
            r.set_max(addr, idx);
            r
        };
        if is_sc(ord) {
            let v = e.threads[tid].view.clone();
            e.sc_view.join(&v);
        }
        let sc = is_sc(ord);
        let loc = e.locs.get_mut(&addr).expect("created above");
        loc.history.push(Store { val, rel });
        if sc {
            loc.sc_floor = idx;
        }
        let rs = loc.readers.entry(tid).or_default();
        rs.last_idx = idx;
        rs.streak = 0;
        mirror(val);
        e.clear_yields();
        e.note(format!("t{tid} store {name} <- {val} ({ord:?})"));
    })
}

/// Read-modify-write: always reads the latest store (RMW atomicity).
/// `compute` returns `Some(new)` to commit a store (swap/fetch-op or a
/// successful CAS) or `None` for a failed CAS (which degrades to a load of
/// the latest value with `fail_ord`).
pub(crate) fn atomic_rmw(
    addr: usize,
    init: u64,
    ord: Ordering,
    fail_ord: Ordering,
    name: &'static str,
    compute: &mut dyn FnMut(u64) -> Option<u64>,
    mirror: &dyn Fn(u64),
) -> (u64, bool) {
    op(false, |e, tid| {
        let (old, prev_rel, latest) = {
            let loc = e.loc_mut(addr, init);
            let latest = loc.history.len() - 1;
            let s = &loc.history[latest];
            (s.val, s.rel.clone(), latest)
        };
        match compute(old) {
            Some(new) => {
                let idx = latest + 1;
                {
                    let th = &mut e.threads[tid];
                    th.read_view.join(&prev_rel);
                    if is_acquire(ord) {
                        th.view.join(&prev_rel);
                    }
                    th.view.set_max(addr, idx);
                }
                let th = &e.threads[tid];
                let mut rel = if is_release(ord) {
                    th.view.clone()
                } else {
                    let mut r = th.fence_rel.clone();
                    r.set_max(addr, idx);
                    r
                };
                // RMWs continue the release sequence of the store they
                // replace: acquire readers of `new` also sync with the
                // previous release.
                rel.join(&prev_rel);
                if is_sc(ord) {
                    let v = e.threads[tid].view.clone();
                    e.sc_view.join(&v);
                }
                let sc = is_sc(ord);
                let loc = e.locs.get_mut(&addr).expect("present");
                loc.history.push(Store { val: new, rel });
                if sc {
                    loc.sc_floor = idx;
                }
                let rs = loc.readers.entry(tid).or_default();
                rs.last_idx = idx;
                rs.streak = 0;
                mirror(new);
                e.clear_yields();
                e.note(format!("t{tid} rmw {name}: {old} -> {new} ({ord:?})"));
                (old, true)
            }
            None => {
                let loc = e.locs.get_mut(&addr).expect("present");
                if is_sc(fail_ord) {
                    loc.sc_floor = loc.sc_floor.max(latest);
                }
                let rs = loc.readers.entry(tid).or_default();
                rs.last_idx = latest;
                rs.streak = 0;
                let th = &mut e.threads[tid];
                th.view.set_max(addr, latest);
                th.read_view.join(&prev_rel);
                if is_acquire(fail_ord) {
                    th.view.join(&prev_rel);
                }
                if is_sc(fail_ord) {
                    let v = e.threads[tid].view.clone();
                    e.sc_view.join(&v);
                }
                e.note(format!("t{tid} rmw-fail {name}: read {old}"));
                (old, false)
            }
        }
    })
}

pub(crate) fn fence(ord: Ordering) {
    op(false, |e, tid| {
        {
            let th = &mut e.threads[tid];
            if is_acquire(ord) {
                let rv = th.read_view.clone();
                th.view.join(&rv);
            }
        }
        if is_sc(ord) {
            // SC fences are the only readers of sc_view: an SC operation
            // elsewhere does NOT by itself pull in the SC order (matching
            // C11, where mixing SC ops with weaker accesses on other
            // locations provides no cross-location guarantee without a
            // fence).
            let mut v = e.threads[tid].view.clone();
            v.join(&e.sc_view);
            e.sc_view.join(&v);
            e.threads[tid].view = v;
        }
        let th = &mut e.threads[tid];
        if is_release(ord) {
            th.fence_rel = th.view.clone();
        }
        e.note(format!("t{tid} fence({ord:?})"));
    })
}

// ---------------------------------------------------------------------
// Locks and condition variables
// ---------------------------------------------------------------------

pub(crate) fn mutex_lock(addr: usize) {
    loop {
        let acquired = op(false, |e, tid| {
            let m = e.muxes.entry(addr).or_default();
            if m.owner.is_none() {
                m.owner = Some(tid);
                let rel = m.rel.clone();
                e.threads[tid].view.join(&rel);
                e.note(format!("t{tid} mutex-lock {addr:#x}"));
                true
            } else {
                e.threads[tid].state = ThState::Blocked(Block::Mutex(addr));
                e.note(format!("t{tid} mutex-block {addr:#x}"));
                false
            }
        });
        if acquired {
            return;
        }
        // Blocked: op() returned only after the scheduler made us
        // runnable again (the owner unlocked); retry the acquisition.
    }
}

pub(crate) fn mutex_try_lock(addr: usize) -> bool {
    op(false, |e, tid| {
        let m = e.muxes.entry(addr).or_default();
        if m.owner.is_none() {
            m.owner = Some(tid);
            let rel = m.rel.clone();
            e.threads[tid].view.join(&rel);
            true
        } else {
            false
        }
    })
}

pub(crate) fn mutex_unlock(addr: usize) {
    op(false, |e, tid| {
        let view = e.threads[tid].view.clone();
        let m = e.muxes.entry(addr).or_default();
        debug_assert_eq!(m.owner, Some(tid), "unlock by non-owner");
        m.owner = None;
        m.rel.join(&view);
        e.wake_blocked(|b| *b == Block::Mutex(addr));
        e.note(format!("t{tid} mutex-unlock {addr:#x}"));
    })
}

pub(crate) fn rw_read_lock(addr: usize) {
    loop {
        let acquired = op(false, |e, tid| {
            let rw = e.rws.entry(addr).or_default();
            if rw.writer.is_none() {
                rw.readers.push(tid);
                let rel = rw.rel.clone();
                e.threads[tid].view.join(&rel);
                true
            } else {
                e.threads[tid].state = ThState::Blocked(Block::RwRead(addr));
                false
            }
        });
        if acquired {
            return;
        }
    }
}

pub(crate) fn rw_read_unlock(addr: usize) {
    op(false, |e, tid| {
        let view = e.threads[tid].view.clone();
        let rw = e.rws.entry(addr).or_default();
        if let Some(pos) = rw.readers.iter().position(|&t| t == tid) {
            rw.readers.swap_remove(pos);
        }
        rw.rel.join(&view);
        if rw.readers.is_empty() {
            e.wake_blocked(|b| *b == Block::RwWrite(addr));
        }
    })
}

pub(crate) fn rw_write_lock(addr: usize) {
    loop {
        let acquired = op(false, |e, tid| {
            let rw = e.rws.entry(addr).or_default();
            if rw.writer.is_none() && rw.readers.is_empty() {
                rw.writer = Some(tid);
                let rel = rw.rel.clone();
                e.threads[tid].view.join(&rel);
                true
            } else {
                e.threads[tid].state = ThState::Blocked(Block::RwWrite(addr));
                false
            }
        });
        if acquired {
            return;
        }
    }
}

pub(crate) fn rw_write_unlock(addr: usize) {
    op(false, |e, tid| {
        let view = e.threads[tid].view.clone();
        let rw = e.rws.entry(addr).or_default();
        debug_assert_eq!(rw.writer, Some(tid));
        rw.writer = None;
        rw.rel.join(&view);
        e.wake_blocked(|b| matches!(b, Block::RwRead(a) | Block::RwWrite(a) if *a == addr));
    })
}

/// Condvar wait: release `mutex_addr`, block on `cv_addr`, then reacquire
/// the mutex. Returns whether the wait ended via timeout (timed waits are
/// woken lazily — only when nothing else can run).
pub(crate) fn condvar_wait(cv_addr: usize, mutex_addr: usize, timed: bool) -> bool {
    op(false, |e, tid| {
        let view = e.threads[tid].view.clone();
        let m = e.muxes.entry(mutex_addr).or_default();
        debug_assert_eq!(m.owner, Some(tid), "condvar wait without the lock");
        m.owner = None;
        m.rel.join(&view);
        e.wake_blocked(|b| *b == Block::Mutex(mutex_addr));
        e.threads[tid].state = ThState::Blocked(Block::Cv { cv: cv_addr, timed });
        e.note(format!("t{tid} cv-wait {cv_addr:#x} (timed={timed})"));
    });
    // op() returned: we were woken (notify or lazy timeout).
    let timed_out = op(false, |e, tid| {
        std::mem::take(&mut e.threads[tid].timeout_fired)
    });
    mutex_lock(mutex_addr);
    timed_out
}

pub(crate) fn condvar_notify(cv_addr: usize, all: bool) {
    op(false, |e, tid| {
        let waiting: Vec<usize> = e
            .threads
            .iter()
            .enumerate()
            .filter(
                |(_, t)| matches!(&t.state, ThState::Blocked(Block::Cv { cv, .. }) if *cv == cv_addr),
            )
            .map(|(i, _)| i)
            .collect();
        if waiting.is_empty() {
            return;
        }
        if all {
            for t in waiting {
                e.threads[t].state = ThState::Runnable;
            }
        } else {
            let k = e.chooser.choose(waiting.len());
            e.threads[waiting[k]].state = ThState::Runnable;
        }
        e.note(format!("t{tid} cv-notify {cv_addr:#x} (all={all})"));
    })
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

/// Register a new model thread (runnable, view seeded from the spawner)
/// and return its `(tid, epoch)` for the OS thread to adopt.
///
/// Deliberately NOT a yield point: the spawner keeps the token until the
/// OS thread backing the new model thread exists (`spawn_yield`), or the
/// scheduler could grant the token to a thread no one will ever run.
pub(crate) fn thread_spawn() -> (usize, u64) {
    let epoch = MODEL_TID
        .with(|c| c.get())
        .expect("thread_spawn outside a model execution")
        .1;
    let g = lock_engine();
    let (mut g, tid) = wait_for_token(g);
    let e = g.exec.as_mut().expect("token implies live execution");
    e.step();
    if e.done {
        engine().cv.notify_all();
        zombie_park(g);
    }
    let mut th = Th::new();
    // Spawn is a synchronization edge: the child starts seeing everything
    // the spawner saw.
    th.view.join(&e.threads[tid].view);
    th.read_view.join(&e.threads[tid].read_view);
    e.threads.push(th);
    let new_tid = e.threads.len() - 1;
    e.note(format!("t{tid} spawned t{new_tid}"));
    drop(g);
    (new_tid, epoch)
}

/// The yield point paired with `thread_spawn`, called once the new OS
/// thread exists and can accept the token.
pub(crate) fn spawn_yield() {
    op(false, |_, _| ());
}

/// Adopt `tid` on this OS thread and wait for the first token grant.
pub(crate) fn enter_thread(tid: usize, epoch: u64) {
    MODEL_TID.with(|c| c.set(Some((tid, epoch))));
    let g = lock_engine();
    let (g, _) = wait_for_token(g);
    drop(g);
}

/// Mark the current model thread finished (or record its panic as the
/// execution failure) and hand the token on. The OS thread then exits.
pub(crate) fn thread_end(fail_msg: Option<String>) {
    let g = lock_engine();
    let (tid, epoch) = my_tid(&g);
    let mut g = g;
    if g.epoch != epoch || g.exec.is_none() {
        drop(g);
        return;
    }
    let e = g.exec.as_mut().expect("checked");
    if let Some(msg) = fail_msg {
        e.fail(format!("thread t{tid} panicked: {msg}"));
        engine().cv.notify_all();
        drop(g);
        return;
    }
    if e.failure.is_some() || e.done {
        drop(g);
        return;
    }
    debug_assert_eq!(e.current, tid, "finishing thread must hold the token");
    e.threads[tid].state = ThState::Finished;
    e.wake_blocked(|b| *b == Block::Join(tid));
    e.reschedule(false);
    engine().cv.notify_all();
    drop(g);
    MODEL_TID.with(|c| c.set(None));
}

/// Block until model thread `target` finishes; joins its final view (so
/// asserts after a join read the joined thread's writes).
pub(crate) fn join_wait(target: usize) {
    loop {
        let finished = op(false, |e, tid| {
            if e.threads[target].state == ThState::Finished {
                let final_view = e.threads[target].view.clone();
                e.threads[tid].view.join(&final_view);
                true
            } else {
                e.threads[tid].state = ThState::Blocked(Block::Join(target));
                false
            }
        });
        if finished {
            return;
        }
    }
}

/// Voluntary yield (`spin_loop` hint): deprioritize this thread until
/// someone else stores. Never counts as a preemption.
pub(crate) fn yield_op() {
    op(true, |e, tid| {
        e.threads[tid].yielded = true;
    })
}

// ---------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------

/// Serializes whole explorations: the engine is a process-wide singleton,
/// and `cargo test` runs tests on several threads.
fn checker_lock() -> OsMutexGuard<'static, ()> {
    static CHECK: OnceLock<OsMutex<()>> = OnceLock::new();
    CHECK
        .get_or_init(|| OsMutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

struct RunOutcome {
    failure: Option<String>,
    trail: Vec<(u32, u32)>,
    trace: Vec<String>,
}

fn run_once(cfg: &Config, chooser: Chooser, f: &Arc<dyn Fn() + Send + Sync>) -> RunOutcome {
    {
        let mut g = lock_engine();
        g.epoch += 1;
        let epoch = g.epoch;
        g.exec = Some(Exec::new(chooser, cfg));
        engine().cv.notify_all();
        let body = f.clone();
        std::thread::Builder::new()
            .name("rpx-model-root".into())
            .spawn(move || {
                MODEL_TID.with(|c| c.set(Some((0, epoch))));
                {
                    let g = lock_engine();
                    let (g, _) = wait_for_token(g);
                    drop(g);
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body()));
                match r {
                    Ok(()) => thread_end(None),
                    Err(p) => thread_end(Some(panic_message(&*p))),
                }
            })
            .expect("spawn model root thread");
        drop(g);
    }

    // Wait for the execution to finish (or fail). The generous timeout
    // only guards against engine bugs, not spec behavior.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let mut g = lock_engine();
    loop {
        let finished = match g.exec.as_ref() {
            Some(e) => e.done || e.failure.is_some(),
            None => true,
        };
        if finished {
            break;
        }
        if std::time::Instant::now() > deadline {
            let diag = match g.exec.as_ref() {
                Some(e) => format!(
                    "current=t{} steps={} threads: {} trace:\n  {}",
                    e.current,
                    e.steps,
                    e.describe_threads(),
                    e.trace.iter().cloned().collect::<Vec<_>>().join("\n  ")
                ),
                None => "exec missing".to_string(),
            };
            panic!("rpx-model: engine stalled (driver timeout); this is a checker bug\n{diag}");
        }
        let (g2, _) = engine()
            .cv
            .wait_timeout(g, Duration::from_millis(200))
            .unwrap_or_else(|p| p.into_inner());
        g = g2;
    }
    let exec = g.exec.take().expect("execution present at completion");
    // Epoch bump turns any still-parked threads of this execution into
    // zombies the moment they next wake.
    g.epoch += 1;
    engine().cv.notify_all();
    drop(g);

    let trail = match exec.chooser {
        Chooser::Dfs { trail, .. } => trail,
        Chooser::Random { .. } => Vec::new(),
    };
    RunOutcome {
        failure: exec.failure,
        trail,
        trace: exec.trace.into_iter().collect(),
    }
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Explore interleavings of `f` under `cfg`: a DFS phase over the
/// preemption-bounded schedule space, then seeded random walks. Honors
/// `RPX_TEST_SEED` (replay exactly one random-walk seed) and
/// `RPX_MODEL_SEED_BASE`/`RPX_MODEL_WALKS`/`RPX_MODEL_EXECUTIONS`.
pub fn explore(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Result<Report, Failure> {
    let _serial = checker_lock();
    let cfg = cfg.with_env();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);

    if let Some(seed) = env_u64("RPX_TEST_SEED") {
        let out = run_once(&cfg, Chooser::Random { state: seed }, &f);
        return match out.failure {
            Some(message) => Err(Failure {
                message,
                seed: Some(seed),
                execution: 0,
                trail: String::from("-"),
                trace: out.trace,
            }),
            None => Ok(Report {
                executions: 1,
                dfs_complete: false,
            }),
        };
    }

    let mut executions = 0u64;
    let mut dfs_complete = false;
    let mut trail: Vec<(u32, u32)> = Vec::new();
    for i in 0..cfg.max_executions {
        let out = run_once(
            &cfg,
            Chooser::Dfs {
                trail: std::mem::take(&mut trail),
                pos: 0,
            },
            &f,
        );
        executions += 1;
        if let Some(message) = out.failure {
            return Err(Failure {
                message,
                seed: None,
                execution: i,
                trail: trail_string(&out.trail),
                trace: out.trace,
            });
        }
        trail = out.trail;
        if !advance_trail(&mut trail) {
            dfs_complete = true;
            break;
        }
    }

    if !dfs_complete {
        for k in 0..cfg.random_walks {
            let mut s = cfg.base_seed ^ 0x6a09_e667_f3bc_c909u64.wrapping_mul(k + 1);
            let seed = splitmix64(&mut s);
            let out = run_once(&cfg, Chooser::Random { state: seed }, &f);
            executions += 1;
            if let Some(message) = out.failure {
                return Err(Failure {
                    message,
                    seed: Some(seed),
                    execution: k,
                    trail: String::from("-"),
                    trace: out.trace,
                });
            }
        }
    }

    Ok(Report {
        executions,
        dfs_complete,
    })
}

/// Run a spec: panics with a replayable report if any explored
/// interleaving violates it.
pub fn check(name: &str, cfg: Config, f: impl Fn() + Send + Sync + 'static) {
    match explore(cfg, f) {
        Ok(report) => {
            eprintln!(
                "rpx-model: spec `{name}` held over {} executions (dfs_complete={})",
                report.executions, report.dfs_complete
            );
        }
        Err(failure) => panic!("{}", failure.render(name)),
    }
}

/// Run a spec that is *expected* to fail (a deliberately-broken mutant):
/// panics if the checker does NOT find a violation, proving the checker
/// can catch the bug class the paired spec guards against.
pub fn check_expect_failure(
    name: &str,
    cfg: Config,
    f: impl Fn() + Send + Sync + 'static,
) -> Failure {
    match explore(cfg, f) {
        Ok(report) => panic!(
            "rpx-model: mutant spec `{name}` was NOT caught after {} executions — \
             the checker would miss this bug class",
            report.executions
        ),
        Err(failure) => {
            eprintln!(
                "rpx-model: mutant `{name}` caught as expected:\n{}",
                failure.render(name)
            );
            failure
        }
    }
}
