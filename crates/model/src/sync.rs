//! Adaptive synchronization primitives.
//!
//! Every type in this module checks, per operation, whether the calling OS
//! thread is a *model thread* (spawned by the exploration engine inside a
//! `check()` run). Inside the model, operations route through the engine —
//! becoming yield points with weak-memory semantics; outside it they behave
//! exactly like their `std`/`parking_lot` counterparts, so code compiled
//! with `--cfg rpx_model` still works in ordinary unit tests and build
//! scripts.
//!
//! Atomics keep their value mirrored in a real `std::sync::atomic` cell
//! (written inside the engine lock), so `get_mut`/`into_inner` and the
//! initial value observed at a location's first model access are always
//! coherent.
//!
//! Limitation (documented, asserted nowhere): a single lock/condvar
//! *instance* must not be contended by model and non-model threads at the
//! same time — the two paths use disjoint blocking mechanisms.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as OsCondvar, Mutex as OsMutex};
use std::time::{Duration, Instant};

pub use std::sync::atomic::Ordering;

use crate::engine;

/// An `atomic::fence` that is a model yield point inside an execution.
pub fn fence(ord: Ordering) {
    if engine::in_model() {
        engine::fence(ord);
    } else {
        std::sync::atomic::fence(ord);
    }
}

macro_rules! int_atomic {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-aware drop-in for `std::sync::atomic` of the same name.
        #[derive(Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            #[inline]
            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            /// Pre-execution value for the location's first model access;
            /// ignored once the engine has a store history for it.
            #[inline]
            fn init(&self) -> u64 {
                self.inner.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                if engine::in_model() {
                    engine::atomic_load(self.addr(), self.init(), ord, stringify!($name)) as $ty
                } else {
                    self.inner.load(ord)
                }
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                if engine::in_model() {
                    engine::atomic_store(
                        self.addr(),
                        self.init(),
                        v as u64,
                        ord,
                        stringify!($name),
                        &|x| self.inner.store(x as $ty, Ordering::Relaxed),
                    );
                } else {
                    self.inner.store(v, ord);
                }
            }

            fn model_rmw(
                &self,
                ord: Ordering,
                fail: Ordering,
                compute: &mut dyn FnMut(u64) -> Option<u64>,
            ) -> (u64, bool) {
                engine::atomic_rmw(
                    self.addr(),
                    self.init(),
                    ord,
                    fail,
                    stringify!($name),
                    compute,
                    &|x| self.inner.store(x as $ty, Ordering::Relaxed),
                )
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                if engine::in_model() {
                    self.model_rmw(ord, Ordering::Relaxed, &mut |_| Some(v as u64))
                        .0 as $ty
                } else {
                    self.inner.swap(v, ord)
                }
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                if engine::in_model() {
                    self.model_rmw(ord, Ordering::Relaxed, &mut |old| {
                        Some((old as $ty).wrapping_add(v) as u64)
                    })
                    .0 as $ty
                } else {
                    self.inner.fetch_add(v, ord)
                }
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                if engine::in_model() {
                    self.model_rmw(ord, Ordering::Relaxed, &mut |old| {
                        Some((old as $ty).wrapping_sub(v) as u64)
                    })
                    .0 as $ty
                } else {
                    self.inner.fetch_sub(v, ord)
                }
            }

            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                if engine::in_model() {
                    self.model_rmw(ord, Ordering::Relaxed, &mut |old| {
                        Some(((old as $ty) | v) as u64)
                    })
                    .0 as $ty
                } else {
                    self.inner.fetch_or(v, ord)
                }
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                if engine::in_model() {
                    self.model_rmw(ord, Ordering::Relaxed, &mut |old| {
                        Some((old as $ty).max(v) as u64)
                    })
                    .0 as $ty
                } else {
                    self.inner.fetch_max(v, ord)
                }
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                if engine::in_model() {
                    let (old, ok) = self.model_rmw(success, failure, &mut |old| {
                        if old as $ty == current {
                            Some(new as u64)
                        } else {
                            None
                        }
                    });
                    if ok {
                        Ok(old as $ty)
                    } else {
                        Err(old as $ty)
                    }
                } else {
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }

            /// Modeled identically to the strong variant: spurious failures
            /// add retries correct code must already tolerate; not exploring
            /// them cannot produce a false positive.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

int_atomic!(AtomicU8, AtomicU8, u8);
int_atomic!(AtomicU32, AtomicU32, u32);
int_atomic!(AtomicU64, AtomicU64, u64);
int_atomic!(AtomicUsize, AtomicUsize, usize);
int_atomic!(AtomicI64, AtomicI64, i64);
int_atomic!(AtomicIsize, AtomicIsize, isize);

/// Model-aware drop-in for `std::sync::atomic::AtomicBool`.
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    #[inline]
    fn init(&self) -> u64 {
        self.inner.load(Ordering::Relaxed) as u64
    }

    pub fn load(&self, ord: Ordering) -> bool {
        if engine::in_model() {
            engine::atomic_load(self.addr(), self.init(), ord, "AtomicBool") != 0
        } else {
            self.inner.load(ord)
        }
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        if engine::in_model() {
            engine::atomic_store(
                self.addr(),
                self.init(),
                v as u64,
                ord,
                "AtomicBool",
                &|x| self.inner.store(x != 0, Ordering::Relaxed),
            );
        } else {
            self.inner.store(v, ord);
        }
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        if engine::in_model() {
            engine::atomic_rmw(
                self.addr(),
                self.init(),
                ord,
                Ordering::Relaxed,
                "AtomicBool",
                &mut |_| Some(v as u64),
                &|x| self.inner.store(x != 0, Ordering::Relaxed),
            )
            .0 != 0
        } else {
            self.inner.swap(v, ord)
        }
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        if engine::in_model() {
            let (old, ok) = engine::atomic_rmw(
                self.addr(),
                self.init(),
                success,
                failure,
                "AtomicBool",
                &mut |old| {
                    if (old != 0) == current {
                        Some(new as u64)
                    } else {
                        None
                    }
                },
                &|x| self.inner.store(x != 0, Ordering::Relaxed),
            );
            if ok {
                Ok(old != 0)
            } else {
                Err(old != 0)
            }
        } else {
            self.inner.compare_exchange(current, new, success, failure)
        }
    }

    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.inner.load(Ordering::Relaxed))
            .finish()
    }
}

/// Model-aware drop-in for `std::sync::atomic::AtomicPtr`.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    #[inline]
    fn init(&self) -> u64 {
        self.inner.load(Ordering::Relaxed) as usize as u64
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        if engine::in_model() {
            engine::atomic_load(self.addr(), self.init(), ord, "AtomicPtr") as usize as *mut T
        } else {
            self.inner.load(ord)
        }
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        if engine::in_model() {
            engine::atomic_store(
                self.addr(),
                self.init(),
                p as usize as u64,
                ord,
                "AtomicPtr",
                &|x| self.inner.store(x as usize as *mut T, Ordering::Relaxed),
            );
        } else {
            self.inner.store(p, ord);
        }
    }

    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        if engine::in_model() {
            engine::atomic_rmw(
                self.addr(),
                self.init(),
                ord,
                Ordering::Relaxed,
                "AtomicPtr",
                &mut |_| Some(p as usize as u64),
                &|x| self.inner.store(x as usize as *mut T, Ordering::Relaxed),
            )
            .0 as usize as *mut T
        } else {
            self.inner.swap(p, ord)
        }
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if engine::in_model() {
            let (old, ok) = engine::atomic_rmw(
                self.addr(),
                self.init(),
                success,
                failure,
                "AtomicPtr",
                &mut |old| {
                    if old as usize == current as usize {
                        Some(new as usize as u64)
                    } else {
                        None
                    }
                },
                &|x| self.inner.store(x as usize as *mut T, Ordering::Relaxed),
            );
            if ok {
                Ok(old as usize as *mut T)
            } else {
                Err(old as usize as *mut T)
            }
        } else {
            self.inner.compare_exchange(current, new, success, failure)
        }
    }

    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr")
            .field(&self.inner.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar / RwLock (parking_lot-shim-compatible surface)
// ---------------------------------------------------------------------

/// Model-aware mutex with the same (non-poisoning) API as the workspace
/// `parking_lot` shim.
pub struct Mutex<T> {
    locked: OsMutex<bool>,
    cv: OsCondvar,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    model: bool,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            locked: OsMutex::new(false),
            cv: OsCondvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn raw_lock_os(&self) {
        let mut g = self.locked.lock().unwrap_or_else(|p| p.into_inner());
        while *g {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        *g = true;
    }

    fn raw_unlock(&self, model: bool) {
        if model {
            engine::mutex_unlock(self.addr());
        } else {
            let mut g = self.locked.lock().unwrap_or_else(|p| p.into_inner());
            *g = false;
            self.cv.notify_one();
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = engine::in_model();
        if model {
            engine::mutex_lock(self.addr());
        } else {
            self.raw_lock_os();
        }
        MutexGuard { lock: self, model }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let model = engine::in_model();
        let ok = if model {
            engine::mutex_try_lock(self.addr())
        } else {
            let mut g = self.locked.lock().unwrap_or_else(|p| p.into_inner());
            if *g {
                false
            } else {
                *g = true;
                true
            }
        };
        ok.then_some(MutexGuard { lock: self, model })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard witnesses exclusive ownership of the lock on
        // whichever path (engine or OS) acquired it.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw_unlock(self.model);
    }
}

/// Result of a timed condvar wait (parking_lot-shim-compatible).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-aware condition variable. The non-model path uses a generation
/// counter so a notification between "release the user mutex" and "block"
/// is never lost; spurious wakeups are possible (as the API allows).
pub struct Condvar {
    generation: OsMutex<u64>,
    cv: OsCondvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            generation: OsMutex::new(0),
            cv: OsCondvar::new(),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if guard.model {
            engine::condvar_wait(self.addr(), guard.lock.addr(), false);
            return;
        }
        let mut generation = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        let target = *generation;
        guard.lock.raw_unlock(false);
        while *generation == target {
            generation = self.cv.wait(generation).unwrap_or_else(|p| p.into_inner());
        }
        drop(generation);
        guard.lock.raw_lock_os();
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if guard.model {
            let timed_out = engine::condvar_wait(self.addr(), guard.lock.addr(), true);
            return WaitTimeoutResult { timed_out };
        }
        let deadline = Instant::now() + timeout;
        let mut generation = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        let target = *generation;
        guard.lock.raw_unlock(false);
        let timed_out = loop {
            if *generation != target {
                break false;
            }
            let now = Instant::now();
            if now >= deadline {
                break true;
            }
            let (g, _) = self
                .cv
                .wait_timeout(generation, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            generation = g;
        };
        drop(generation);
        guard.lock.raw_lock_os();
        WaitTimeoutResult { timed_out }
    }

    pub fn notify_one(&self) {
        if engine::in_model() {
            engine::condvar_notify(self.addr(), false);
            return;
        }
        let mut generation = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        *generation += 1;
        self.cv.notify_one();
    }

    pub fn notify_all(&self) {
        if engine::in_model() {
            engine::condvar_notify(self.addr(), true);
            return;
        }
        let mut generation = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        *generation += 1;
        self.cv.notify_all();
    }
}

#[derive(Default)]
struct RwCtrl {
    writer: bool,
    readers: usize,
}

/// Model-aware reader-writer lock (no writer preference; recursive reads
/// are allowed on both paths — the registry's counter callbacks re-enter
/// read locks).
pub struct RwLock<T> {
    ctrl: OsMutex<RwCtrl>,
    cv: OsCondvar,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    model: bool,
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    model: bool,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            ctrl: OsMutex::new(RwCtrl {
                writer: false,
                readers: 0,
            }),
            cv: OsCondvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = engine::in_model();
        if model {
            engine::rw_read_lock(self.addr());
        } else {
            let mut g = self.ctrl.lock().unwrap_or_else(|p| p.into_inner());
            while g.writer {
                g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
            g.readers += 1;
        }
        RwLockReadGuard { lock: self, model }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = engine::in_model();
        if model {
            engine::rw_write_lock(self.addr());
        } else {
            let mut g = self.ctrl.lock().unwrap_or_else(|p| p.into_inner());
            while g.writer || g.readers > 0 {
                g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
            g.writer = true;
        }
        RwLockWriteGuard { lock: self, model }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            engine::rw_read_unlock(self.lock.addr());
        } else {
            let mut g = self.lock.ctrl.lock().unwrap_or_else(|p| p.into_inner());
            g.readers -= 1;
            if g.readers == 0 {
                self.lock.cv.notify_all();
            }
        }
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.model {
            engine::rw_write_unlock(self.lock.addr());
        } else {
            let mut g = self.lock.ctrl.lock().unwrap_or_else(|p| p.into_inner());
            g.writer = false;
            self.lock.cv.notify_all();
        }
    }
}
