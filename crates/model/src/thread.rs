//! Model-aware thread spawn/join. Inside an execution, spawned closures
//! become model threads scheduled by the engine; outside, this is plain
//! `std::thread`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::engine;

pub struct JoinHandle<T> {
    os: std::thread::JoinHandle<Option<T>>,
    /// Model thread id when spawned inside an execution.
    tid: Option<usize>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if engine::in_model() {
        let (tid, epoch) = engine::thread_spawn();
        let os = std::thread::Builder::new()
            .name(format!("rpx-model-t{tid}"))
            .spawn(move || {
                engine::enter_thread(tid, epoch);
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        engine::thread_end(None);
                        Some(v)
                    }
                    Err(p) => {
                        // Records the panic as the execution's failure; the
                        // engine abandons the interleaving.
                        engine::thread_end(Some(engine::panic_message(&*p)));
                        None
                    }
                }
            })
            .expect("spawn model thread");
        engine::spawn_yield();
        JoinHandle { os, tid: Some(tid) }
    } else {
        JoinHandle {
            os: std::thread::spawn(move || Some(f())),
            tid: None,
        }
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(tid) = self.tid {
            // Blocks in the engine until the model thread finishes (and
            // joins its final clock — asserts after join see its writes).
            engine::join_wait(tid);
        }
        match self.os.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread panicked")),
            Err(e) => Err(e),
        }
    }
}

pub fn yield_now() {
    if engine::in_model() {
        engine::yield_op();
    } else {
        std::thread::yield_now();
    }
}
