//! `rpx-model` — a deterministic concurrency model-checker in the spirit
//! of loom/shuttle, built for this workspace's lock-free core (the
//! Chase-Lev deque and segmented injector in `shims/crossbeam`, the
//! scheduler's sleeper/park gate and `EventGate` in `crates/runtime`, and
//! the counter-registry snapshot protocol in `crates/core`).
//!
//! # How it works
//!
//! A spec is a closure passed to [`check`]. The engine runs it repeatedly,
//! each time serializing all threads it spawns (via [`thread::spawn`])
//! onto a single run token: every operation on the primitives in [`sync`]
//! is a yield point where a scheduler decides who runs next and which
//! store a weak load observes. Interleavings are explored by depth-first
//! search over those decisions (complete up to the configured preemption
//! bound), then by seeded random walks. A violated assertion, deadlock, or
//! step-budget livelock is reported with the exact seed / choice trail to
//! replay it (`RPX_TEST_SEED=<seed>` reruns exactly that interleaving).
//!
//! # Wiring code under the checker
//!
//! Production crates route `std::sync::atomic`, `parking_lot` locks, spin
//! hints, and thread spawns through a thin local `sync` facade that
//! re-exports the real primitives normally and these instrumented ones
//! under `--cfg rpx_model`. The instrumented types are *adaptive*: outside
//! an execution they behave exactly like the real ones, so an
//! `rpx_model`-cfg'd build still runs its ordinary unit tests.
//!
//! What is explored: schedule interleavings (bounded preemptions +
//! unlimited voluntary switches) and C11-style weak-memory effects
//! (store buffering, independent-reads reordering, release/acquire
//! synchronization, release sequences, fences including SeqCst).
//! What is not: unbounded stale reads (a thread re-reading the same stale
//! value is eventually forced to the latest store), spurious CAS failures,
//! and interleavings beyond the preemption bound in the DFS phase.

mod clock;
mod engine;

pub mod hint;
pub mod mutation;
pub mod sync;
pub mod thread;

pub use engine::{check, check_expect_failure, explore, in_model, Config, Failure, Report};
