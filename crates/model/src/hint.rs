//! Model-aware spin hint: inside an execution a spin is a *voluntary*
//! yield (free under the preemption bound) that deprioritizes the spinner
//! until another thread stores — keeping spin-wait loops finite to explore.

use crate::engine;

pub fn spin_loop() {
    if engine::in_model() {
        engine::yield_op();
    } else {
        std::hint::spin_loop();
    }
}
