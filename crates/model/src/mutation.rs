//! Mutation registry: lets mutant specs arm a named, deliberately-broken
//! code path (e.g. "skip this fence") to prove the checker catches the bug
//! class the paired spec guards against.
//!
//! Deliberately NOT a model yield point: arming happens before an
//! exploration starts, and probing from production code must stay free.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

fn set() -> &'static Mutex<HashSet<String>> {
    static SET: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Arm the named mutation. Instrumented code probes it with
/// `armed(name)` (via each crate's facade `mutation_armed` helper, which
/// compiles to a constant `false` outside `cfg(rpx_model)`).
pub fn arm(name: &str) {
    set()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(name.to_string());
}

pub fn armed(name: &str) -> bool {
    set()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .contains(name)
}

/// Disarm everything. Call after a mutant exploration so later specs in
/// the same test process see pristine code.
pub fn disarm_all() {
    set().lock().unwrap_or_else(|p| p.into_inner()).clear();
}
