//! Engine self-checks: litmus tests proving the checker finds the bug
//! classes it exists to catch (store buffering, missing release/acquire,
//! lost wakeups, deadlock) and does NOT flag correctly-synchronized code.
//!
//! These run in ordinary `cargo test` — the model primitives are adaptive,
//! so no `--cfg rpx_model` is needed for the checker's own tests.

use std::sync::Arc;

use rpx_model::sync::{AtomicUsize, Condvar, Mutex, Ordering};
use rpx_model::{check, check_expect_failure, explore, thread, Config};

fn small() -> Config {
    Config {
        max_executions: 2000,
        random_walks: 200,
        ..Config::default()
    }
}

/// Classic store buffering: with only Relaxed accesses both threads may
/// read 0 — the checker must find that outcome.
#[test]
fn store_buffering_relaxed_is_caught() {
    let failure = check_expect_failure("sb_relaxed", small(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t0 = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        let (x3, y3) = (x.clone(), y.clone());
        let t1 = thread::spawn(move || {
            y3.store(1, Ordering::Relaxed);
            x3.load(Ordering::Relaxed)
        });
        let r0 = t0.join().unwrap();
        let r1 = t1.join().unwrap();
        assert!(!(r0 == 0 && r1 == 0), "store buffering observed");
    });
    assert!(failure.message.contains("store buffering"));
}

/// The same litmus with SeqCst fences between store and load is forbidden:
/// the spec must hold over every explored interleaving.
#[test]
fn store_buffering_with_sc_fences_is_forbidden() {
    check("sb_sc_fences", small(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t0 = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            rpx_model::sync::fence(Ordering::SeqCst);
            y2.load(Ordering::Relaxed)
        });
        let (x3, y3) = (x.clone(), y.clone());
        let t1 = thread::spawn(move || {
            y3.store(1, Ordering::Relaxed);
            rpx_model::sync::fence(Ordering::SeqCst);
            x3.load(Ordering::Relaxed)
        });
        let r0 = t0.join().unwrap();
        let r1 = t1.join().unwrap();
        assert!(
            !(r0 == 0 && r1 == 0),
            "store buffering through SeqCst fences"
        );
    });
}

/// Message passing with a Release flag store and Acquire flag load always
/// delivers the payload.
#[test]
fn message_passing_release_acquire_holds() {
    check("mp_rel_acq", small(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let producer = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        let (d3, f3) = (data.clone(), flag.clone());
        let consumer = thread::spawn(move || {
            let mut seen = false;
            for _ in 0..64 {
                if f3.load(Ordering::Acquire) == 1 {
                    seen = true;
                    break;
                }
                rpx_model::hint::spin_loop();
            }
            if seen {
                assert_eq!(d3.load(Ordering::Relaxed), 42, "payload lost");
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    });
}

/// Same shape with a Relaxed flag store: the payload can be missed, and
/// the checker must demonstrate it.
#[test]
fn message_passing_relaxed_flag_is_caught() {
    let failure = check_expect_failure("mp_relaxed", small(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let producer = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        let (d3, f3) = (data.clone(), flag.clone());
        let consumer = thread::spawn(move || {
            let mut seen = false;
            for _ in 0..64 {
                if f3.load(Ordering::Acquire) == 1 {
                    seen = true;
                    break;
                }
                rpx_model::hint::spin_loop();
            }
            if seen {
                assert_eq!(d3.load(Ordering::Relaxed), 42, "payload lost");
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    });
    assert!(failure.message.contains("payload lost"));
}

/// Two RMW incrementers never lose an update (RMWs read the latest store).
#[test]
fn fetch_add_never_loses_updates() {
    check("rmw_exact", small(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 4);
    });
}

/// AB/BA lock ordering: the checker must report the deadlock.
#[test]
fn lock_order_inversion_deadlocks() {
    let failure = check_expect_failure("ab_ba_deadlock", small(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        let t0 = thread::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            let _ = (*ga, *gb);
        });
        let (a3, b3) = (a.clone(), b.clone());
        let t1 = thread::spawn(move || {
            let gb = b3.lock();
            let ga = a3.lock();
            let _ = (*ga, *gb);
        });
        let _ = t0.join();
        let _ = t1.join();
    });
    assert!(
        failure.message.contains("deadlock"),
        "got: {}",
        failure.message
    );
}

/// A timed condvar wait with no notifier must end via its (lazy) timeout,
/// not a deadlock report.
#[test]
fn timed_wait_fires_lazily_instead_of_deadlocking() {
    check("timed_wait", small(), || {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
        assert!(r.timed_out(), "no notifier exists, wait must time out");
    });
}

/// Condvar wakeups are not lost: with the generation protocol the waiter
/// always observes the flag flip.
#[test]
fn condvar_handoff_holds() {
    check("cv_handoff", small(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let setter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            drop(g);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        let mut spins = 0;
        while !*g {
            let r = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
            let _ = r;
            spins += 1;
            assert!(spins < 16, "flag flip never observed");
        }
        drop(g);
        setter.join().unwrap();
    });
}

/// The DFS phase is deterministic: the same failing spec reports the same
/// choice trail on every run.
#[test]
fn dfs_replay_is_deterministic() {
    let spec = || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
        let seen = x.load(Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(seen, 0, "deliberately racy assertion");
    };
    let f1 = explore(small(), spec).expect_err("race must be found");
    let f2 = explore(small(), spec).expect_err("race must be found");
    assert_eq!(f1.execution, f2.execution);
    assert_eq!(f1.trail, f2.trail);
    assert_eq!(f1.seed, f2.seed);
}

#[test]
fn mutation_registry_arms_and_disarms() {
    rpx_model::mutation::disarm_all();
    assert!(!rpx_model::mutation::armed("x"));
    rpx_model::mutation::arm("x");
    assert!(rpx_model::mutation::armed("x"));
    assert!(!rpx_model::mutation::armed("y"));
    rpx_model::mutation::disarm_all();
    assert!(!rpx_model::mutation::armed("x"));
}
