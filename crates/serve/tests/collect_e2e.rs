//! The multi-process collector story: two real `rpx-serve` processes,
//! one `rpx-collect` invocation, one merged table.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    fn spawn() -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rpx-serve"))
            .args([
                "--workers",
                "1",
                "--fib",
                "16",
                "--interval-ms",
                "100",
                "--duration-ms",
                "0",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rpx-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("rpx-serve prints its address")
            .expect("readable stdout");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .to_string();
        ServeProc { child, addr }
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn rpx_collect_merges_two_runtime_processes() {
    let a = ServeProc::spawn();
    let b = ServeProc::spawn();
    assert_ne!(a.addr, b.addr);

    // CSV merge via the real binary.
    let out = Command::new(env!("CARGO_BIN_EXE_rpx-collect"))
        .args([a.addr.as_str(), b.addr.as_str(), "--format", "csv"])
        .output()
        .expect("run rpx-collect");
    assert!(
        out.status.success(),
        "rpx-collect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = String::from_utf8(out.stdout).expect("utf-8 csv");
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("source,metric,value"));
    let rows: Vec<&str> = lines.collect();
    assert!(
        rows.iter().any(|r| r.starts_with(&a.addr)),
        "rows from process A"
    );
    assert!(
        rows.iter().any(|r| r.starts_with(&b.addr)),
        "rows from process B"
    );
    // Both processes export the same metric families; the merge keys rows
    // by source so the aggregate keeps them apart.
    let metric_of = |row: &str| row.split(',').nth(1).unwrap_or("").to_string();
    let a_metrics: Vec<String> = rows
        .iter()
        .filter(|r| r.starts_with(&a.addr))
        .map(|r| metric_of(r))
        .collect();
    assert!(rows
        .iter()
        .filter(|r| r.starts_with(&b.addr))
        .any(|r| a_metrics.contains(&metric_of(r))));

    // JSON mode parses and carries both sources.
    let out = Command::new(env!("CARGO_BIN_EXE_rpx-collect"))
        .args([a.addr.as_str(), b.addr.as_str(), "--format", "json"])
        .output()
        .expect("run rpx-collect json");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf-8 json");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("parseable json");
    let sources: Vec<String> = (0..)
        .map_while(|i| parsed[i]["source"].as_str().map(str::to_string))
        .collect();
    assert!(sources.contains(&a.addr) && sources.contains(&b.addr));
}

#[test]
fn rpx_collect_fails_loudly_on_a_dead_endpoint() {
    let a = ServeProc::spawn();
    // A port nothing listens on: the collector must not emit a partial
    // aggregate pretending the dead process contributed.
    let out = Command::new(env!("CARGO_BIN_EXE_rpx-collect"))
        .args([a.addr.as_str(), "127.0.0.1:9", "--format", "csv"])
        .output()
        .expect("run rpx-collect");
    assert!(!out.status.success());
}
