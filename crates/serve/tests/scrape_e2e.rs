//! End-to-end scrape tests: a live runtime under load, scraped over real
//! TCP — text endpoint and binary stream — with topology churn.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use rpx_runtime::{Runtime, RuntimeConfig, RuntimeHandle};
use rpx_serve::collect::{http_get, parse_exposition, Merged, MergedRow};
use rpx_serve::proto::{self, Frame};
use rpx_serve::server::{attach_runtime, ServeConfig, Server};

fn fib(h: &RuntimeHandle, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let h2 = h.clone();
    let a = h.spawn(move || fib(&h2, n - 1));
    let b = fib(h, n - 2);
    a.get() + b
}

fn start_serving(interval: Duration) -> (Runtime, Server) {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let registry = rt.registry();
    let server = Server::start(
        &registry,
        ServeConfig {
            interval,
            specs: vec![
                "/threads{locality#0/worker-thread#*}/count/cumulative".into(),
                "/threads{locality#0/total}/count/cumulative".into(),
                "/threads{locality#0/total}/time/cumulative".into(),
                // Canonical name with `@`, `{}`, `#` and a comma: the
                // escaping torture case.
                "/statistics/max@/threads{locality#0/total}/time/average,8".into(),
            ],
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    attach_runtime(&rt, &server);
    (rt, server)
}

#[test]
fn text_endpoint_scrapes_are_monotone_and_stable_across_generations() {
    let (rt, server) = start_serving(Duration::from_millis(50));
    let addr = server.addr().to_string();
    let h = rt.handle();

    fib(&h, 16);
    let first = parse_exposition(&http_get(&addr, "/metrics").expect("first scrape"));
    assert!(!first.is_empty(), "scrape must return samples");

    fib(&h, 16);
    // Topology-generation bump mid-scrape (what a watchdog worker respawn
    // does): metric names must stay stable, cumulative values monotone.
    rt.registry().bump_generation();
    fib(&h, 14);
    let second = parse_exposition(&http_get(&addr, "/metrics").expect("second scrape"));

    let first_names: HashSet<&String> = first.iter().map(|(n, _)| n).collect();
    let second_names: HashSet<&String> = second.iter().map(|(n, _)| n).collect();
    assert_eq!(
        first_names, second_names,
        "metric names must be stable across a topology-generation bump"
    );

    let first_by_name: HashMap<&String, f64> = first.iter().map(|(n, v)| (n, *v)).collect();
    for (name, value) in &second {
        if name.contains("cumulative") {
            let before = first_by_name[&name];
            assert!(
                *value >= before,
                "{name} went backwards: {before} -> {value}"
            );
            // The load between scrapes ran real tasks, so the totals grew.
        }
    }
    let total = second
        .iter()
        .find(|(n, _)| n.contains("rpx_threads_count_cumulative") && n.contains("total"))
        .expect("total task counter exported");
    assert!(
        total.1 > first_by_name[&total.0],
        "task totals must grow under load"
    );

    // The statistics counter's parameters (with comma) surface as an
    // escaped params label, and survive a CSV round trip quoted.
    let stats_metric = second
        .iter()
        .find(|(n, _)| n.starts_with("rpx_statistics_max"))
        .expect("statistics counter exported");
    assert!(
        stats_metric.0.contains("params=\""),
        "parameters must become a label: {}",
        stats_metric.0
    );
    let merged = Merged {
        rows: vec![MergedRow {
            source: addr.clone(),
            metric: stats_metric.0.clone(),
            value: stats_metric.1,
        }],
    };
    let csv = merged.to_csv();
    let row = csv.lines().nth(1).unwrap();
    assert!(
        row.contains("\"rpx_statistics_max"),
        "comma-bearing metric must be RFC-4180 quoted: {row}"
    );

    rt.shutdown();
    server.shutdown();
}

#[test]
fn http_misc_routes_behave() {
    let (rt, server) = start_serving(Duration::from_secs(10));
    let addr = server.addr().to_string();
    assert_eq!(http_get(&addr, "/healthz").unwrap(), "ok\n");
    assert!(http_get(&addr, "/nonsense").is_err(), "404 is an error");
    rt.shutdown();
    server.shutdown();
}

#[test]
fn binary_stream_backfills_then_streams_dedupably() {
    let (rt, server) = start_serving(Duration::from_millis(40));
    let h = rt.handle();
    fib(&h, 16);
    // Let the publisher fill some history before the subscriber arrives.
    assert!(server.flush_now());
    assert!(server.flush_now());
    assert!(server.flush_now());

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&proto::encode_hello(8)).unwrap();
    fib(&h, 14);
    let frames = proto::read_frames(&mut stream, 64).expect("stream decodes");

    let mut dict: HashMap<u32, String> = HashMap::new();
    let mut backfill = 0usize;
    let mut live = 0usize;
    let mut seen: HashSet<(u32, u64)> = HashSet::new();
    let mut max_backfill_seq = 0u64;
    let mut saw_live_after_backfill = false;
    for f in &frames {
        match f {
            Frame::Dict { id, name, .. } => {
                dict.insert(*id, name.clone());
            }
            Frame::Backfill { id, seq, .. } => {
                backfill += 1;
                assert!(dict.contains_key(id), "DICT must precede backfill");
                seen.insert((*id, *seq));
                max_backfill_seq = max_backfill_seq.max(*seq);
            }
            Frame::Sample { id, seq, .. } => {
                live += 1;
                assert!(dict.contains_key(id), "DICT must precede samples");
                // (id, seq) identifies a sample: a subscriber that sees it
                // in both backfill and live streams deduplicates exactly.
                if !seen.insert((*id, *seq)) {
                    assert!(
                        *seq <= max_backfill_seq,
                        "duplicate (id, seq) outside the backfill overlap"
                    );
                }
                if *seq > max_backfill_seq {
                    saw_live_after_backfill = true;
                }
            }
            Frame::Stats { .. } => {}
        }
    }
    assert!(
        backfill > 0,
        "history must be replayed to a late subscriber"
    );
    assert!(live > 0, "live samples must follow");
    assert!(saw_live_after_backfill, "stream must advance past backfill");
    assert!(
        dict.values().any(|n| n.contains("worker-thread#0")),
        "dictionary carries canonical names"
    );

    rt.shutdown();
    server.shutdown();
}

#[test]
fn quiesce_drain_hook_flushes_a_final_scrape() {
    let (rt, server) = start_serving(Duration::from_secs(30));
    let h = rt.handle();
    fib(&h, 16);
    let before = server
        .stats()
        .scrape_count
        .load(std::sync::atomic::Ordering::Relaxed);
    // The publisher interval is 30 s: without the drain hook no further
    // scrape would happen inside this test.
    let report = rt.quiesce(Duration::from_secs(10));
    assert!(report.drained);
    let after = server
        .stats()
        .scrape_count
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        after > before,
        "quiesce must force a final publish tick ({before} -> {after})"
    );
    rt.shutdown();
    server.shutdown();
}

#[test]
fn slow_subscribers_are_dropped_with_exact_accounting() {
    let (rt, server) = start_serving(Duration::from_millis(20));
    let h = rt.handle();
    fib(&h, 14);
    // Subscribe, then vanish without reading: the OS buffer eventually
    // fills (or the reset surfaces) and the publisher must disconnect the
    // subscriber and count the undelivered frames.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&proto::encode_hello(0)).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    drop(stream);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let stats = server.stats();
    while std::time::Instant::now() < deadline {
        server.flush_now();
        if stats
            .stream_dropped
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        stats
            .stream_dropped
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "undelivered frames must be counted, not silently lost"
    );
    rt.shutdown();
    server.shutdown();
}
