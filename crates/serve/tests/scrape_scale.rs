//! The paper's overhead envelope, measured at wire scale: ≥10,000 live
//! counter instances scraped at 1 Hz must keep the self-measured serve
//! overhead within ≤10 % of task execution time (release; the debug
//! bound is looser, mirroring the repo's other overhead gates).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rpx_counters::counter::{Counter, RawCounter};
use rpx_counters::name::{CounterInstance, CounterName};
use rpx_counters::value::{CounterInfo, CounterKind};
use rpx_runtime::{Runtime, RuntimeConfig, RuntimeHandle};
use rpx_serve::server::{ServeConfig, Server};

const INSTANCES: u32 = 10_000;

fn fib(h: &RuntimeHandle, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let h2 = h.clone();
    let a = h.spawn(move || fib(&h2, n - 1));
    let b = fib(h, n - 2);
    a.get() + b
}

#[test]
fn ten_thousand_counters_at_one_hz_stay_in_the_overhead_envelope() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let registry = rt.registry();

    // One counter type, ten thousand live instances — the shape of a
    // large per-object instrumentation (per-queue, per-actor, per-shard).
    let cell = Arc::new(AtomicI64::new(0));
    let info = CounterInfo::new(
        "/app/cell",
        CounterKind::MonotonicallyIncreasing,
        "per-object probe",
        "1",
    );
    let clock = registry.clock();
    let c2 = cell.clone();
    registry.register_type(
        info,
        Arc::new(move |name: &CounterName, _| {
            let mut i = CounterInfo::new(
                "/app/cell",
                CounterKind::MonotonicallyIncreasing,
                "per-object probe",
                "1",
            );
            i.name = name.canonical();
            let c = c2.clone();
            Ok(Arc::new(RawCounter::new(
                i,
                clock.clone(),
                Arc::new(move || c.load(Ordering::Relaxed)),
            )) as Arc<dyn Counter>)
        }),
        Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| {
            for w in 0..INSTANCES {
                f(CounterName::new("app", "cell").with_instance(CounterInstance::worker(0, w)));
            }
        })),
    );

    let server = Server::start(
        &registry,
        ServeConfig {
            interval: Duration::from_secs(1), // the 1 Hz of the claim
            history: 8,
            shards: 8,
            specs: vec![
                "/app{locality#0/worker-thread#*}/cell".into(),
                "/threads{locality#0/total}/time/cumulative".into(),
            ],
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    assert!(
        server.engine().entries().len() as u32 > INSTANCES,
        "the export set must hold all {INSTANCES} instances"
    );

    // ~3 s of load: the publisher ticks at 1 Hz while tasks run.
    let h = rt.handle();
    let t0 = std::time::Instant::now();
    while t0.elapsed() < Duration::from_secs(3) {
        let _ = fib(&h, 18);
        cell.fetch_add(1, Ordering::Relaxed);
    }
    rt.wait_idle();
    // Force one final full scrape so at least 3-4 batches are measured.
    assert!(server.flush_now());

    let read = |name: &str| {
        registry
            .evaluate(name, false)
            .map(|v| v.value)
            .unwrap_or_default()
    };
    let scrape_count = read("/counters/serve/scrape-count");
    let scrape_ns = read("/counters/serve/scrape-time");
    let exec_ns = read("/threads{locality#0/total}/time/cumulative");
    assert!(scrape_count >= 3, "1 Hz over 3 s must scrape ≥3 times");
    assert!(exec_ns > 0, "the load must have executed tasks");

    // The paper's envelope: ≤10 % of execution time in release. Debug
    // builds run the whole pipeline unoptimized, so the gate loosens the
    // same way the repo's other overhead gates do.
    let max_percent: i64 = if cfg!(debug_assertions) { 50 } else { 10 };
    let overhead_pct = scrape_ns as f64 * 100.0 / exec_ns as f64;
    assert!(
        (overhead_pct as i64) < max_percent,
        "scraping {} instances {scrape_count} times cost {scrape_ns} ns \
         = {overhead_pct:.2}% of {exec_ns} ns execution (limit {max_percent}%)",
        server.engine().entries().len(),
    );

    server.shutdown();
    rt.shutdown();
}
