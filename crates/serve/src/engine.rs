//! The sharded scrape front-end: generation-cached counter handles,
//! per-counter history rings, and exact drop accounting.
//!
//! ## Scrape-vs-update memory ordering
//!
//! A scrape never takes a registry lock. Each shard stores its export
//! entries as an `Arc<Vec<Arc<ExportEntry>>>` behind a `parking_lot`
//! `RwLock` that is held only long enough to clone the outer `Arc`; the
//! actual evaluation walks the cloned list with no lock at all. Counter
//! updates on the hot path are plain relaxed atomic increments inside the
//! runtime; a scrape reads them through `Counter::get_value`, which uses
//! acquire loads where a counter maintains multi-word state. The scrape
//! therefore observes each counter atomically but the *batch* is not a
//! cross-counter snapshot — the same contract the in-process sampler and
//! HPX itself provide. Topology changes are detected by comparing the
//! registry's generation (acquire load) against the engine's stamp; the
//! swap of a shard's entry list is an `Arc` store under the write lock, so
//! a scraper either sees the whole old list or the whole new one.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rpx_counters::counter::Counter;
use rpx_counters::value::CounterInfo;
use rpx_counters::{CounterError, CounterRegistry, ResolvedQuery};

/// One scraped value, stamped with the engine-wide scrape sequence so a
/// subscriber that receives both a backfill and the live stream can
/// deduplicate exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Engine-wide scrape sequence number (1-based; every counter sampled
    /// in the same scrape shares it).
    pub seq: u64,
    /// Registry-clock timestamp (ns since epoch) of the scrape.
    pub timestamp_ns: u64,
    /// Scaled counter value ([`rpx_counters::CounterValue::scaled`]).
    pub value: f64,
    /// Whether the evaluation produced a usable value.
    pub ok: bool,
}

/// Fixed-capacity ring of the most recent samples of one exported
/// counter, for late binary-stream subscribers to backfill from.
///
/// Ring-buffer drop rule: an eviction forced by a full ring is counted —
/// in this ring and in the engine-wide total behind
/// `/counters/serve/dropped` — never silent.
pub struct HistoryRing {
    cap: usize,
    buf: Mutex<VecDeque<Sample>>,
    dropped: AtomicU64,
    dropped_total: Arc<AtomicU64>,
}

impl HistoryRing {
    fn new(cap: usize, dropped_total: Arc<AtomicU64>) -> Self {
        HistoryRing {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            dropped_total,
        }
    }

    fn push(&self, s: Sample) {
        let mut buf = self.buf.lock();
        while buf.len() >= self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(s);
    }

    /// The most recent sample, if any scrape happened yet.
    pub fn latest(&self) -> Option<Sample> {
        self.buf.lock().back().copied()
    }

    /// The most recent `n` samples, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Sample> {
        let buf = self.buf.lock();
        buf.iter()
            .skip(buf.len().saturating_sub(n))
            .copied()
            .collect()
    }

    /// Samples evicted from this ring so far (exact).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// One exported counter: stable identity (`id`, `canonical`), cached
/// metadata, the live handle, and its history ring. The entry — and with
/// it the ring and the binary-stream dictionary id — survives topology
/// refreshes as long as the canonical name stays resolvable; only the
/// handle inside is swapped.
pub struct ExportEntry {
    /// Stable dictionary id for the binary stream.
    pub id: u32,
    /// Canonical counter name (`/object{instance}/counter`).
    pub canonical: String,
    /// Counter metadata at resolution time (kind, help, unit).
    pub info: CounterInfo,
    counter: RwLock<Arc<dyn Counter>>,
    /// Recent samples for subscriber backfill.
    pub ring: HistoryRing,
}

/// Self-measurement of the serve layer, exported as
/// `/counters/serve/{scrape-count,scrape-time,bytes,dropped}`.
#[derive(Default)]
pub struct ServeStats {
    /// Completed scrapes (text endpoint + publisher ticks).
    pub scrape_count: AtomicU64,
    /// Total ns spent evaluating scrape batches.
    pub scrape_time_ns: AtomicU64,
    /// Response/stream payload bytes written to clients.
    pub bytes: AtomicU64,
    /// History-ring evictions, engine-wide.
    pub history_dropped: Arc<AtomicU64>,
    /// Binary-stream frames dropped because a subscriber could not keep
    /// up (its connection is then closed — a stalled stream must not
    /// stall the publisher).
    pub stream_dropped: AtomicU64,
}

impl ServeStats {
    /// All records lost anywhere in the serve pipeline.
    pub fn dropped(&self) -> u64 {
        self.history_dropped.load(Ordering::Relaxed) + self.stream_dropped.load(Ordering::Relaxed)
    }
}

struct Shard {
    entries: RwLock<Arc<Vec<Arc<ExportEntry>>>>,
}

/// Sharded, generation-cached scrape engine over one registry.
pub struct ScrapeEngine {
    registry: Arc<CounterRegistry>,
    query: Mutex<ResolvedQuery>,
    by_name: Mutex<HashMap<String, Arc<ExportEntry>>>,
    shards: Vec<Shard>,
    /// Topology generation the shard lists were built against.
    generation: AtomicU64,
    next_id: AtomicU64,
    seq: AtomicU64,
    history_cap: usize,
    stats: Arc<ServeStats>,
}

impl ScrapeEngine {
    /// Resolve `specs` (wildcards allowed; unknown names are an error
    /// *now*) and build the shard lists. Registers the serve
    /// self-measurement counters on `registry`.
    pub fn new(
        registry: &Arc<CounterRegistry>,
        specs: &[String],
        shards: usize,
        history_cap: usize,
    ) -> Result<Arc<Self>, CounterError> {
        // Register the self-measurement counters before resolving, so the
        // export specs may include the serve layer's own counters.
        let stats = Arc::new(ServeStats::default());
        register_serve_counters(registry, &stats);
        let query = ResolvedQuery::resolve(registry, specs)?;
        let engine = Arc::new(ScrapeEngine {
            registry: registry.clone(),
            generation: AtomicU64::new(query.generation()),
            query: Mutex::new(query),
            by_name: Mutex::new(HashMap::new()),
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    entries: RwLock::new(Arc::new(Vec::new())),
                })
                .collect(),
            next_id: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            history_cap,
            stats,
        });
        engine.rebuild();
        Ok(engine)
    }

    /// The registry this engine scrapes.
    pub fn registry(&self) -> &Arc<CounterRegistry> {
        &self.registry
    }

    /// Self-measurement counters (shared with the server).
    pub fn stats(&self) -> Arc<ServeStats> {
        self.stats.clone()
    }

    /// Re-resolve the specs if the registry topology moved. Entries whose
    /// canonical name survives keep their ring and dictionary id; only
    /// the counter handle is refreshed. Returns `true` if the export set
    /// changed.
    pub fn refresh_if_stale(&self) -> bool {
        if self.registry.generation() == self.generation.load(Ordering::Acquire) {
            return false;
        }
        self.rebuild()
    }

    fn rebuild(&self) -> bool {
        let mut query = self.query.lock();
        // Stamp first (like ResolvedQuery): a concurrent bump re-triggers.
        self.generation
            .store(self.registry.generation(), Ordering::Release);
        query.refresh();
        let mut by_name = self.by_name.lock();
        let mut fresh: HashMap<String, Arc<ExportEntry>> = HashMap::new();
        let mut shard_lists: Vec<Vec<Arc<ExportEntry>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut created = false;
        for h in query.handles() {
            let entry = match by_name.remove(&h.canonical) {
                Some(e) => {
                    *e.counter.write() = h.counter.clone();
                    e
                }
                None => {
                    created = true;
                    Arc::new(ExportEntry {
                        id: self.next_id.fetch_add(1, Ordering::Relaxed) as u32,
                        canonical: h.canonical.clone(),
                        info: h.counter.info(),
                        counter: RwLock::new(h.counter.clone()),
                        ring: HistoryRing::new(
                            self.history_cap,
                            self.stats.history_dropped.clone(),
                        ),
                    })
                }
            };
            shard_lists[shard_of(&h.canonical, self.shards.len())].push(entry.clone());
            fresh.insert(h.canonical.clone(), entry);
        }
        // Whatever is left in the old index resolved to nothing anymore.
        let changed = created || !by_name.is_empty();
        *by_name = fresh;
        for (shard, list) in self.shards.iter().zip(shard_lists) {
            *shard.entries.write() = Arc::new(list);
        }
        changed
    }

    /// Every export entry, shard order (stable between refreshes).
    pub fn entries(&self) -> Vec<Arc<ExportEntry>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let list = shard.entries.read().clone();
            out.extend(list.iter().cloned());
        }
        out
    }

    /// Scrape every exported counter: evaluate the cached handles (no
    /// registry lock), push each sample into its entry's history ring,
    /// and return the batch. The batch's wall time is folded into the
    /// serve stats *and* the registry's own query-overhead counters, so
    /// the paper's overhead envelope includes remote scrapers.
    pub fn collect(&self) -> Vec<(Arc<ExportEntry>, Sample)> {
        self.refresh_if_stale();
        let clock = self.registry.clock();
        let t0 = clock.now_ns();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut out = Vec::new();
        for shard in &self.shards {
            let list = shard.entries.read().clone();
            for entry in list.iter() {
                let counter = entry.counter.read().clone();
                let value = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    counter.get_value(false)
                }));
                let sample = match value {
                    Ok(v) => Sample {
                        seq,
                        timestamp_ns: v.timestamp_ns,
                        value: v.scaled(),
                        ok: v.status.is_ok(),
                    },
                    Err(_) => Sample {
                        seq,
                        timestamp_ns: t0,
                        value: 0.0,
                        ok: false,
                    },
                };
                entry.ring.push(sample);
                out.push((entry.clone(), sample));
            }
        }
        let dt = clock.now_ns().saturating_sub(t0);
        self.stats.scrape_count.fetch_add(1, Ordering::Relaxed);
        self.stats.scrape_time_ns.fetch_add(dt, Ordering::Relaxed);
        self.registry.record_query_overhead(dt, 1);
        out
    }
}

fn shard_of(canonical: &str, shards: usize) -> usize {
    // FNV-1a over the canonical name: stable across refreshes so an
    // entry stays on its shard.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    (h % shards as u64) as usize
}

type StatReader = Arc<dyn Fn(&ServeStats) -> u64 + Send + Sync>;

fn register_serve_counters(registry: &Arc<CounterRegistry>, stats: &Arc<ServeStats>) {
    let specs: [(&str, &str, &str, StatReader); 4] = [
        (
            "/counters/serve/scrape-count",
            "completed telemetry scrapes (text endpoint and publisher ticks)",
            "1",
            Arc::new(|s| s.scrape_count.load(Ordering::Relaxed)),
        ),
        (
            "/counters/serve/scrape-time",
            "total time spent evaluating telemetry scrape batches",
            "ns",
            Arc::new(|s| s.scrape_time_ns.load(Ordering::Relaxed)),
        ),
        (
            "/counters/serve/bytes",
            "telemetry payload bytes written to clients",
            "bytes",
            Arc::new(|s| s.bytes.load(Ordering::Relaxed)),
        ),
        (
            "/counters/serve/dropped",
            "telemetry records lost (history-ring evictions + stream frames \
             dropped on slow subscribers)",
            "1",
            Arc::new(|s| s.dropped()),
        ),
    ];
    for (name, help, unit, read) in specs {
        // A fresh engine must not report a predecessor's totals: replace
        // the type entry *and* the cached instance.
        registry.unregister_type(name);
        let stats = stats.clone();
        registry.register_monotonic(name, help, unit, Arc::new(move || read(&stats) as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    fn engine_with(
        specs: &[&str],
        history: usize,
    ) -> (Arc<CounterRegistry>, Arc<ScrapeEngine>, Arc<AtomicI64>) {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_monotonic(
            "/app/requests",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        let specs: Vec<String> = specs.iter().map(|s| s.to_string()).collect();
        let engine = ScrapeEngine::new(&reg, &specs, 4, history).unwrap();
        (reg, engine, v)
    }

    #[test]
    fn collect_samples_and_feeds_history() {
        let (_reg, engine, v) = engine_with(&["/app/requests"], 8);
        v.store(3, Ordering::Relaxed);
        let batch = engine.collect();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].0.canonical, "/app/requests");
        assert_eq!(batch[0].1.value, 3.0);
        assert!(batch[0].1.ok);
        v.store(9, Ordering::Relaxed);
        engine.collect();
        let ring = &engine.entries()[0].ring;
        let tail = ring.tail(8);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].value, 3.0);
        assert_eq!(tail[1].value, 9.0);
        // Scrape sequence numbers are engine-wide and increasing.
        assert_eq!(tail[0].seq + 1, tail[1].seq);
    }

    #[test]
    fn history_ring_counts_evictions_exactly() {
        let (_reg, engine, _v) = engine_with(&["/app/requests"], 4);
        for _ in 0..10 {
            engine.collect();
        }
        let entry = &engine.entries()[0];
        assert_eq!(entry.ring.tail(100).len(), 4);
        assert_eq!(entry.ring.dropped(), 6, "10 pushes into 4 slots evict 6");
        assert_eq!(engine.stats().dropped(), 6);
        let exported = engine
            .registry()
            .evaluate("/counters/serve/dropped", false)
            .unwrap();
        assert_eq!(exported.value, 6);
    }

    #[test]
    fn refresh_preserves_entry_identity_across_generations() {
        let (reg, engine, _v) = engine_with(&["/app/requests"], 8);
        engine.collect();
        let before = engine.entries();
        let (id, ring_len) = (before[0].id, before[0].ring.tail(8).len());
        reg.bump_generation();
        engine.collect();
        let after = engine.entries();
        assert_eq!(after[0].id, id, "dictionary id must survive a bump");
        assert_eq!(
            after[0].ring.tail(8).len(),
            ring_len + 1,
            "ring must survive a bump and keep accumulating"
        );
    }

    #[test]
    fn collect_tracks_topology_growth() {
        let (reg, engine, _v) = engine_with(&["/app/requests"], 8);
        assert_eq!(engine.collect().len(), 1);
        reg.register_raw("/app/errors", "h", "1", Arc::new(|| 0));
        // The new type is only exported if a spec matches it; /app/requests
        // does not, so the set is unchanged…
        assert_eq!(engine.collect().len(), 1);
        // …but self-measurement proves the scrapes were accounted.
        assert!(engine.stats().scrape_count.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn unknown_spec_errors_eagerly() {
        let reg = CounterRegistry::new();
        assert!(ScrapeEngine::new(&reg, &["/none/x".into()], 2, 4).is_err());
    }
}
