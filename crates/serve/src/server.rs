//! The dependency-free telemetry listener: HTTP/1.1 text exposition and
//! binary stream subscribers on one TCP port, plus the publisher thread
//! that feeds history rings and subscribers at a fixed cadence.

use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use rpx_counters::value::CounterKind;
use rpx_counters::{CounterError, CounterRegistry};
use rpx_runtime::Runtime;

use crate::engine::{ExportEntry, ScrapeEngine, ServeStats};
use crate::{proto, text};

/// Configuration of a telemetry server.
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Publisher cadence feeding history rings and binary subscribers.
    pub interval: Duration,
    /// History-ring capacity per exported counter.
    pub history: usize,
    /// Scrape front-end shards.
    pub shards: usize,
    /// Counter specs to export (wildcards allowed).
    pub specs: Vec<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            interval: Duration::from_secs(1),
            history: 64,
            shards: 4,
            specs: Vec::new(),
        }
    }
}

struct Subscriber {
    stream: TcpStream,
    /// Dictionary ids already announced on this connection.
    known: HashSet<u32>,
}

struct Shared {
    engine: Arc<ScrapeEngine>,
    stats: Arc<ServeStats>,
    stop: AtomicBool,
    flush_requests: AtomicU64,
    flush_completed: AtomicU64,
    subscribers: Mutex<Vec<Subscriber>>,
    interval: Duration,
}

impl Shared {
    /// Publish one batch: feed history rings, then stream it to every
    /// subscriber. A subscriber whose socket errors or times out is
    /// disconnected and its undelivered frames are counted as dropped —
    /// a stalled consumer must not stall the publisher.
    fn publish_tick(&self) {
        let batch = self.engine.collect();
        let mut subs = self.subscribers.lock();
        if subs.is_empty() {
            return;
        }
        subs.retain_mut(|sub| {
            let mut frames = 0u64;
            let mut buf = Vec::new();
            for (entry, sample) in &batch {
                if sub.known.insert(entry.id) {
                    buf.extend_from_slice(&proto::encode(&dict_frame(entry)));
                    frames += 1;
                }
                buf.extend_from_slice(&proto::encode(&proto::Frame::Sample {
                    id: entry.id,
                    seq: sample.seq,
                    timestamp_ns: sample.timestamp_ns,
                    value: sample.value,
                    ok: sample.ok,
                }));
                frames += 1;
            }
            buf.extend_from_slice(&proto::encode(&proto::Frame::Stats {
                history_dropped: self.stats.history_dropped.load(Ordering::Relaxed),
                stream_dropped: self.stats.stream_dropped.load(Ordering::Relaxed),
            }));
            frames += 1;
            match sub.stream.write_all(&buf) {
                Ok(()) => {
                    self.stats
                        .bytes
                        .fetch_add(buf.len() as u64, Ordering::Relaxed);
                    true
                }
                Err(_) => {
                    // The whole tick is undelivered for this subscriber.
                    self.stats
                        .stream_dropped
                        .fetch_add(frames, Ordering::Relaxed);
                    false
                }
            }
        });
    }

    fn flush_now(&self) -> bool {
        let target = self.flush_requests.fetch_add(1, Ordering::AcqRel) + 1;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if self.flush_completed.load(Ordering::Acquire) >= target {
                return true;
            }
            if self.stop.load(Ordering::Acquire) || std::time::Instant::now() >= deadline {
                return self.flush_completed.load(Ordering::Acquire) >= target;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// A running telemetry server; [`shutdown`](Server::shutdown) (or drop)
/// stops it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, resolve the export specs, and start the accept + publisher
    /// threads.
    pub fn start(
        registry: &Arc<CounterRegistry>,
        config: ServeConfig,
    ) -> Result<Server, CounterError> {
        let engine = ScrapeEngine::new(registry, &config.specs, config.shards, config.history)?;
        let listener = TcpListener::bind(&config.addr)
            .and_then(|l| l.local_addr().map(|a| (l, a)))
            .map_err(|e| CounterError::SpawnFailed(format!("bind {}: {e}", config.addr)))?;
        let (listener, addr) = listener;
        listener
            .set_nonblocking(true)
            .map_err(|e| CounterError::SpawnFailed(format!("nonblocking listener: {e}")))?;
        let shared = Arc::new(Shared {
            stats: engine.stats(),
            engine,
            stop: AtomicBool::new(false),
            flush_requests: AtomicU64::new(0),
            flush_completed: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
            interval: config.interval,
        });

        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("rpx-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| CounterError::SpawnFailed(format!("accept thread: {e}")))?;

        let publish_shared = shared.clone();
        let publisher = std::thread::Builder::new()
            .name("rpx-serve-publish".into())
            .spawn(move || publish_loop(publish_shared))
            .map_err(|e| CounterError::SpawnFailed(format!("publisher thread: {e}")))?;

        Ok(Server {
            addr,
            shared,
            threads: vec![accept, publisher],
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape engine behind the endpoints.
    pub fn engine(&self) -> Arc<ScrapeEngine> {
        self.shared.engine.clone()
    }

    /// Self-measurement counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        self.shared.stats.clone()
    }

    /// Force an immediate publish tick and block until one complete
    /// batch — started entirely after this call — reached the rings and
    /// subscribers. The quiesce-time final scrape.
    pub fn flush_now(&self) -> bool {
        self.shared.flush_now()
    }

    /// Stop the listener and publisher and join them.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Final courtesy: close subscriber sockets.
        self.shared.subscribers.lock().clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Wire a server to a runtime so quiescing flushes one final complete
/// scrape into the rings and streams before workers park — the remote
/// twin of the sampler's drain-hook flush.
pub fn attach_runtime(runtime: &Runtime, server: &Server) {
    let shared = server.shared.clone();
    runtime.add_drain_hook(move || {
        if !shared.stop.load(Ordering::Acquire) {
            shared.flush_now();
        }
    });
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, &shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn publish_loop(shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        let flush_req = shared.flush_requests.load(Ordering::Acquire);
        shared.publish_tick();
        shared.flush_completed.store(flush_req, Ordering::Release);
        // Sliced sleep: stop and flush_now stay prompt.
        let mut remaining = shared.interval;
        let slice = Duration::from_millis(5);
        while remaining > Duration::ZERO
            && !shared.stop.load(Ordering::Acquire)
            && shared.flush_requests.load(Ordering::Acquire) <= flush_req
        {
            let d = remaining.min(slice);
            std::thread::sleep(d);
            remaining = remaining.saturating_sub(d);
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut head = [0u8; 4];
    if stream.read_exact(&mut head).is_err() {
        return;
    }
    if head == proto::MAGIC {
        subscribe(stream, shared);
    } else {
        serve_http(stream, head, shared);
    }
}

/// Complete a binary hello, replay DICT + backfill, and enroll the
/// subscriber with the publisher.
fn subscribe(mut stream: TcpStream, shared: &Arc<Shared>) {
    let mut rest = [0u8; 5];
    if stream.read_exact(&mut rest).is_err() || rest[0] != proto::VERSION {
        return;
    }
    let backfill = u32::from_le_bytes(rest[1..5].try_into().unwrap()) as usize;
    shared.engine.refresh_if_stale();
    let mut known = HashSet::new();
    let mut buf = Vec::new();
    for entry in shared.engine.entries() {
        buf.extend_from_slice(&proto::encode(&dict_frame(&entry)));
        known.insert(entry.id);
        for s in entry.ring.tail(backfill) {
            buf.extend_from_slice(&proto::encode(&proto::Frame::Backfill {
                id: entry.id,
                seq: s.seq,
                timestamp_ns: s.timestamp_ns,
                value: s.value,
                ok: s.ok,
            }));
        }
    }
    if stream.write_all(&buf).is_err() {
        return;
    }
    shared
        .stats
        .bytes
        .fetch_add(buf.len() as u64, Ordering::Relaxed);
    shared.subscribers.lock().push(Subscriber { stream, known });
}

fn dict_frame(entry: &ExportEntry) -> proto::Frame {
    proto::Frame::Dict {
        id: entry.id,
        kind: kind_code(entry.info.kind),
        name: entry.canonical.clone(),
    }
}

fn kind_code(kind: CounterKind) -> u8 {
    match kind {
        CounterKind::Raw => 0,
        CounterKind::MonotonicallyIncreasing => 1,
        CounterKind::Average => 2,
        CounterKind::AggregateStatistics => 3,
        CounterKind::ElapsedTime => 4,
    }
}

/// Minimal HTTP/1.1: read the request head (the 4 sniffed bytes are its
/// start), answer `/metrics` with a fresh scrape and `/healthz` with a
/// liveness probe.
fn serve_http(mut stream: TcpStream, head: [u8; 4], shared: &Arc<Shared>) {
    let mut req = head.to_vec();
    let mut chunk = [0u8; 1024];
    while !req.windows(4).any(|w| w == b"\r\n\r\n") && req.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => req.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
    }
    let request_line = match std::str::from_utf8(&req)
        .ok()
        .and_then(|s| s.lines().next())
    {
        Some(l) => l.to_string(),
        None => return,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        let batch = shared.engine.collect();
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            text::render(&batch),
        )
    } else if path == "/healthz" {
        ("200 OK", "text/plain", "ok\n".to_string())
    } else {
        ("404 Not Found", "text/plain", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(response.as_bytes()).is_ok() {
        shared
            .stats
            .bytes
            .fetch_add(response.len() as u64, Ordering::Relaxed);
    }
}
