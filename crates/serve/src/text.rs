//! Prometheus text exposition (format version 0.0.4) for counter batches.
//!
//! Counter names are mangled deterministically: the wildcard-free *type
//! path* becomes the metric family (`/threads/time/cumulative` →
//! `rpx_threads_time_cumulative`), the instance and parameter text become
//! `instance`/`params` labels with Prometheus escaping (`\\`, `\"`,
//! `\n`). Two different canonical counter names can never collide into
//! the same (family, labels) pair because the mangling is injective on
//! `(type path, instance, params)` and those three reconstruct the
//! canonical name.

use std::collections::BTreeMap;
use std::sync::Arc;

use rpx_counters::value::CounterKind;

use crate::engine::{ExportEntry, Sample};

/// Split a canonical counter name into (type path, instance, parameters):
/// `/threads{locality#0/worker-thread#1}/time/cumulative@w,5` →
/// `("/threads/time/cumulative", "locality#0/worker-thread#1", "w,5")`.
pub fn split_canonical(canonical: &str) -> (String, String, String) {
    let (body, params) = match canonical.split_once('@') {
        Some((b, p)) => (b, p),
        None => (canonical, ""),
    };
    let (type_path, instance) = match (body.find('{'), body.find('}')) {
        (Some(open), Some(close)) if close > open => {
            let mut t = body[..open].to_string();
            t.push_str(&body[close + 1..]);
            (t, body[open + 1..close].to_string())
        }
        _ => (body.to_string(), String::new()),
    };
    (type_path, instance, params.to_string())
}

/// Mangle a counter type path into a Prometheus metric family name:
/// `rpx` + the path with every non-alphanumeric byte as `_`.
pub fn metric_name(type_path: &str) -> String {
    let mut out = String::with_capacity(type_path.len() + 4);
    out.push_str("rpx");
    for c in type_path.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus label-value escaping: backslash, double quote, newline.
pub fn label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// HELP-text escaping: backslash and newline (quotes are legal there).
fn help_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// The label set of one entry (without braces), e.g.
/// `instance="locality#0/worker-thread#1",params="w,5"`. Empty for a bare
/// type-path counter.
pub fn labels_of(entry: &ExportEntry) -> String {
    let (_, instance, params) = split_canonical(&entry.canonical);
    let mut labels = Vec::new();
    if !instance.is_empty() {
        labels.push(format!("instance=\"{}\"", label_escape(&instance)));
    }
    if !params.is_empty() {
        labels.push(format!("params=\"{}\"", label_escape(&params)));
    }
    labels.join(",")
}

fn prom_type(kind: CounterKind) -> &'static str {
    match kind {
        CounterKind::MonotonicallyIncreasing | CounterKind::ElapsedTime => "counter",
        _ => "gauge",
    }
}

/// Render a scrape batch as one exposition payload. Samples are grouped
/// by metric family (HELP/TYPE emitted once per family); entries whose
/// evaluation failed are omitted from the payload — Prometheus has no
/// "unavailable" value — but still counted in the family's sample lines
/// absence, which scrapers detect as a disappearing series.
pub fn render(batch: &[(Arc<ExportEntry>, Sample)]) -> String {
    // family -> (help, type, lines), sorted for a stable payload.
    let mut families: BTreeMap<String, (String, &'static str, Vec<String>)> = BTreeMap::new();
    for (entry, sample) in batch {
        let (type_path, _, _) = split_canonical(&entry.canonical);
        let family = metric_name(&type_path);
        let slot = families.entry(family.clone()).or_insert_with(|| {
            (
                help_escape(&entry.info.help),
                prom_type(entry.info.kind),
                Vec::new(),
            )
        });
        if !sample.ok {
            continue;
        }
        let labels = labels_of(entry);
        let rendered = if labels.is_empty() {
            format!("{family} {}", fmt_value(sample.value))
        } else {
            format!("{family}{{{labels}}} {}", fmt_value(sample.value))
        };
        slot.2.push(rendered);
    }
    let mut out = String::new();
    for (family, (help, ty, lines)) in families {
        out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} {ty}\n"));
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Prometheus floats: integral values render without a fraction so text
/// diffs and tests stay exact.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_canonical_extracts_all_parts() {
        assert_eq!(
            split_canonical("/threads{locality#0/worker-thread#1}/time/cumulative@w,5"),
            (
                "/threads/time/cumulative".to_string(),
                "locality#0/worker-thread#1".to_string(),
                "w,5".to_string()
            )
        );
        assert_eq!(
            split_canonical("/app/requests"),
            ("/app/requests".to_string(), String::new(), String::new())
        );
    }

    #[test]
    fn metric_names_are_mangled_deterministically() {
        assert_eq!(
            metric_name("/threads/time/cumulative"),
            "rpx_threads_time_cumulative"
        );
        assert_eq!(metric_name("/app/idle-rate"), "rpx_app_idle_rate");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
