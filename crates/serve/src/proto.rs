//! The compact binary streaming protocol.
//!
//! A client opens the TCP connection with a 9-byte hello — the magic
//! `RPXB`, a `u8` protocol version, and a `u32` LE backfill depth (how
//! many history samples per counter it wants replayed). The magic is what
//! the shared listener sniffs to tell binary subscribers from HTTP
//! scrapers on one port.
//!
//! The server then sends a stream of length-prefixed frames: a `u32` LE
//! payload length, then the payload. The first payload byte is a tag:
//!
//! | tag | frame | layout after the tag |
//! |-----|----------|--------------------|
//! | 1 | DICT     | `u32` id, `u8` kind, `u16` name length, name bytes |
//! | 2 | SAMPLE   | `u32` id, `u64` seq, `u64` timestamp_ns, `f64` value, `u8` ok |
//! | 3 | BACKFILL | same layout as SAMPLE; replayed from the history ring |
//! | 4 | STATS    | `u64` history drops, `u64` stream drops |
//!
//! A DICT frame precedes the first SAMPLE/BACKFILL of every counter id —
//! including ids that appear after a topology change. BACKFILL frames are
//! replayed oldest-first right after a subscriber's DICT burst; because
//! every sample carries the engine-wide scrape `seq`, a subscriber that
//! sees a sample both in the backfill and live deduplicates on `(id,
//! seq)`. All integers are little-endian.

use std::io::{self, Read};

/// Connection-open magic distinguishing binary subscribers from HTTP.
pub const MAGIC: [u8; 4] = *b"RPXB";
/// Protocol version carried in the hello.
pub const VERSION: u8 = 1;

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Counter-id → name/kind binding.
    Dict {
        /// Stable dictionary id of the counter.
        id: u32,
        /// [`rpx_counters::value::CounterKind`] discriminant (display only).
        kind: u8,
        /// Canonical counter name.
        name: String,
    },
    /// One live sample.
    Sample {
        /// Dictionary id.
        id: u32,
        /// Engine-wide scrape sequence.
        seq: u64,
        /// Registry-clock timestamp (ns).
        timestamp_ns: u64,
        /// Scaled value.
        value: f64,
        /// Whether the evaluation was usable.
        ok: bool,
    },
    /// A history sample replayed for a late subscriber (same payload as
    /// [`Frame::Sample`]).
    Backfill {
        /// Dictionary id.
        id: u32,
        /// Engine-wide scrape sequence.
        seq: u64,
        /// Registry-clock timestamp (ns).
        timestamp_ns: u64,
        /// Scaled value.
        value: f64,
        /// Whether the evaluation was usable.
        ok: bool,
    },
    /// Drop accounting snapshot.
    Stats {
        /// History-ring evictions so far.
        history_dropped: u64,
        /// Stream frames dropped on slow subscribers so far.
        stream_dropped: u64,
    },
}

const TAG_DICT: u8 = 1;
const TAG_SAMPLE: u8 = 2;
const TAG_BACKFILL: u8 = 3;
const TAG_STATS: u8 = 4;

/// The 9-byte client hello.
pub fn encode_hello(backfill: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&backfill.to_le_bytes());
    out
}

/// Encode one frame, length prefix included.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    match frame {
        Frame::Dict { id, kind, name } => {
            payload.push(TAG_DICT);
            payload.extend_from_slice(&id.to_le_bytes());
            payload.push(*kind);
            let bytes = name.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            payload.extend_from_slice(&(len as u16).to_le_bytes());
            payload.extend_from_slice(&bytes[..len]);
        }
        Frame::Sample {
            id,
            seq,
            timestamp_ns,
            value,
            ok,
        }
        | Frame::Backfill {
            id,
            seq,
            timestamp_ns,
            value,
            ok,
        } => {
            payload.push(if matches!(frame, Frame::Sample { .. }) {
                TAG_SAMPLE
            } else {
                TAG_BACKFILL
            });
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.extend_from_slice(&timestamp_ns.to_le_bytes());
            payload.extend_from_slice(&value.to_le_bytes());
            payload.push(u8::from(*ok));
        }
        Frame::Stats {
            history_dropped,
            stream_dropped,
        } => {
            payload.push(TAG_STATS);
            payload.extend_from_slice(&history_dropped.to_le_bytes());
            payload.extend_from_slice(&stream_dropped.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one frame from the front of `buf`. Returns the frame and the
/// bytes consumed, `Ok(None)` if `buf` holds only a partial frame, and an
/// error on malformed payloads.
pub fn decode(buf: &[u8]) -> io::Result<Option<(Frame, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 || len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let p = &buf[4..4 + len];
    let frame = parse_payload(p)?;
    Ok(Some((frame, 4 + len)))
}

fn parse_payload(p: &[u8]) -> io::Result<Frame> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let tag = *p.first().ok_or_else(|| bad("empty payload"))?;
    let p = &p[1..];
    match tag {
        TAG_DICT => {
            if p.len() < 7 {
                return Err(bad("short DICT"));
            }
            let id = u32::from_le_bytes(p[0..4].try_into().unwrap());
            let kind = p[4];
            let name_len = u16::from_le_bytes(p[5..7].try_into().unwrap()) as usize;
            if p.len() < 7 + name_len {
                return Err(bad("short DICT name"));
            }
            let name = String::from_utf8(p[7..7 + name_len].to_vec())
                .map_err(|_| bad("DICT name not utf-8"))?;
            Ok(Frame::Dict { id, kind, name })
        }
        TAG_SAMPLE | TAG_BACKFILL => {
            if p.len() < 29 {
                return Err(bad("short SAMPLE"));
            }
            let id = u32::from_le_bytes(p[0..4].try_into().unwrap());
            let seq = u64::from_le_bytes(p[4..12].try_into().unwrap());
            let timestamp_ns = u64::from_le_bytes(p[12..20].try_into().unwrap());
            let value = f64::from_le_bytes(p[20..28].try_into().unwrap());
            let ok = p[28] != 0;
            Ok(if tag == TAG_SAMPLE {
                Frame::Sample {
                    id,
                    seq,
                    timestamp_ns,
                    value,
                    ok,
                }
            } else {
                Frame::Backfill {
                    id,
                    seq,
                    timestamp_ns,
                    value,
                    ok,
                }
            })
        }
        TAG_STATS => {
            if p.len() < 16 {
                return Err(bad("short STATS"));
            }
            Ok(Frame::Stats {
                history_dropped: u64::from_le_bytes(p[0..8].try_into().unwrap()),
                stream_dropped: u64::from_le_bytes(p[8..16].try_into().unwrap()),
            })
        }
        _ => Err(bad("unknown frame tag")),
    }
}

/// Blocking helper: read frames from `r` until `limit` frames arrived or
/// the stream ends. Used by tests and `rpx-collect`'s stream mode.
pub fn read_frames(r: &mut impl Read, limit: usize) -> io::Result<Vec<Frame>> {
    let mut frames = Vec::new();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while frames.len() < limit {
        match decode(&buf)? {
            Some((frame, used)) => {
                buf.drain(..used);
                frames.push(frame);
                continue;
            }
            None => {
                let n = r.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let frames = [
            Frame::Dict {
                id: 7,
                kind: 1,
                name: "/threads{locality#0/worker-thread#1}/time/cumulative".into(),
            },
            Frame::Sample {
                id: 7,
                seq: 42,
                timestamp_ns: 123_456_789,
                value: 3.25,
                ok: true,
            },
            Frame::Backfill {
                id: 7,
                seq: 41,
                timestamp_ns: 120_000_000,
                value: 2.0,
                ok: false,
            },
            Frame::Stats {
                history_dropped: 9,
                stream_dropped: 2,
            },
        ];
        for frame in &frames {
            let bytes = encode(frame);
            let (decoded, used) = decode(&bytes).unwrap().expect("complete frame");
            assert_eq!(&decoded, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn decode_handles_partial_and_concatenated_frames() {
        let a = encode(&Frame::Stats {
            history_dropped: 1,
            stream_dropped: 0,
        });
        let b = encode(&Frame::Sample {
            id: 1,
            seq: 2,
            timestamp_ns: 3,
            value: 4.0,
            ok: true,
        });
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        // Partial prefix: no frame yet, no error.
        assert!(decode(&joined[..3]).unwrap().is_none());
        assert!(decode(&joined[..a.len() - 1]).unwrap().is_none());
        // Full first frame decodes and reports its exact length.
        let (f, used) = decode(&joined).unwrap().unwrap();
        assert!(matches!(f, Frame::Stats { .. }));
        assert_eq!(used, a.len());
        let (f2, used2) = decode(&joined[used..]).unwrap().unwrap();
        assert!(matches!(f2, Frame::Sample { .. }));
        assert_eq!(used2, b.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[255, 255, 255, 255, 0]).is_err());
        let mut bogus = 5u32.to_le_bytes().to_vec();
        bogus.extend_from_slice(&[99, 0, 0, 0, 0]);
        assert!(decode(&bogus).is_err());
    }

    #[test]
    fn hello_is_nine_bytes_and_magic_prefixed() {
        let hello = encode_hello(16);
        assert_eq!(hello.len(), 9);
        assert_eq!(&hello[..4], &MAGIC);
        assert_eq!(hello[4], VERSION);
        assert_eq!(u32::from_le_bytes(hello[5..9].try_into().unwrap()), 16);
    }
}
