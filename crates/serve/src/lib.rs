//! # rpx-serve — wire-level live telemetry for rpx counters
//!
//! The paper's premise is that intrinsic counters are cheap enough to stay
//! on in production; this crate is the consumer that premise earns. It
//! exposes a running registry to *other processes* — a Prometheus-style
//! text exposition endpoint and a compact length-prefixed binary stream —
//! without ever taking a registry lock on the scrape path.
//!
//! ## Architecture
//!
//! - [`engine::ScrapeEngine`] — the sharded scrape front-end. Counter
//!   handles are resolved once per topology
//!   [generation](rpx_counters::CounterRegistry::generation) and cached in
//!   per-shard lists; a scrape clones each shard's `Arc` list and
//!   evaluates handles with no registry lock held. Every exported counter
//!   carries a fixed-capacity [`engine::HistoryRing`] so late binary
//!   subscribers can backfill; ring evictions are counted, never silent.
//! - [`text`] — Prometheus text exposition (name mangling, label
//!   escaping, HELP/TYPE metadata).
//! - [`proto`] — the binary framing: `u32` little-endian length prefix,
//!   then DICT / SAMPLE / BACKFILL / STATS frames. A client opens with the
//!   magic `RPXB`, which the listener sniffs to tell binary subscribers
//!   from HTTP scrapers on one port.
//! - [`server::Server`] — the dependency-free HTTP/1.1 + TCP listener, a
//!   1 Hz publisher thread feeding rings and subscribers, self-measurement
//!   counters (`/counters/serve/{scrape-time,scrape-count,bytes,dropped}`),
//!   and a quiesce-time final scrape via
//!   [`server::attach_runtime`].
//! - [`collect`] — `rpx-collect`'s library: scrape N endpoints, parse the
//!   exposition, merge into one CSV/JSON table keyed by (source, metric).
//!
//! ## Quick start
//!
//! ```no_run
//! use rpx_counters::CounterRegistry;
//! use rpx_serve::server::{ServeConfig, Server};
//!
//! let registry = CounterRegistry::new();
//! registry.register_raw("/app/requests", "requests served", "1",
//!     std::sync::Arc::new(|| 42));
//! let server = Server::start(
//!     &registry,
//!     ServeConfig {
//!         specs: vec!["/app/requests".into()],
//!         ..ServeConfig::default()
//!     },
//! )
//! .unwrap();
//! println!("scrape me at http://{}/metrics", server.addr());
//! ```

pub mod collect;
pub mod engine;
pub mod proto;
pub mod server;
pub mod text;

pub use engine::{ExportEntry, HistoryRing, Sample, ScrapeEngine, ServeStats};
pub use server::{attach_runtime, ServeConfig, Server};
