//! The multi-process collector: scrape N `rpx-serve` endpoints and merge
//! the expositions into one table keyed by `(source, metric)` — the
//! separate-process monitor architecture from ROADMAP item 1. CSV output
//! follows RFC 4180 (shared escaping with the in-process sampler's
//! [`CsvSink`](rpx_counters::sampler::CsvSink)).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rpx_counters::sampler::csv_escape;
use serde::Serialize;

/// One merged reading.
#[derive(Debug, Clone, Serialize)]
pub struct MergedRow {
    /// The endpoint the reading came from.
    pub source: String,
    /// Prometheus metric line head (`family{labels}`).
    pub metric: String,
    /// Sample value.
    pub value: f64,
}

/// Scrapes merged across processes.
#[derive(Debug, Default, Serialize)]
pub struct Merged {
    /// All rows, source-major in scrape order.
    pub rows: Vec<MergedRow>,
}

impl Merged {
    /// RFC-4180 CSV: `source,metric,value` with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("source,metric,value\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{}\n",
                csv_escape(&row.source),
                csv_escape(&row.metric),
                row.value
            ));
        }
        out
    }

    /// JSON array of `{source, metric, value}` objects.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.rows).unwrap_or_else(|_| "[]".into())
    }

    /// Endpoints that contributed at least one row.
    pub fn sources(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for row in &self.rows {
            if out.last() != Some(&row.source.as_str()) && !out.contains(&row.source.as_str()) {
                out.push(&row.source);
            }
        }
        out
    }
}

/// Minimal HTTP/1.1 GET returning the response body.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(io::Error::other(format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}

/// Parse a Prometheus text exposition into `(metric line head, value)`
/// pairs, skipping comments and malformed lines.
pub fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is the last whitespace-separated token; label values
        // may contain spaces, so split from the right.
        if let Some((metric, value)) = line.rsplit_once(char::is_whitespace) {
            if let Ok(v) = value.parse::<f64>() {
                out.push((metric.trim_end().to_string(), v));
            }
        }
    }
    out
}

/// Scrape every endpoint's `/metrics` and merge the results. An endpoint
/// that fails to scrape is reported as an error — a collector that
/// silently omits a process produces misleading aggregates.
pub fn scrape_and_merge(endpoints: &[String]) -> io::Result<Merged> {
    let mut merged = Merged::default();
    for endpoint in endpoints {
        let body = http_get(endpoint, "/metrics")?;
        for (metric, value) in parse_exposition(&body) {
            merged.rows.push(MergedRow {
                source: endpoint.clone(),
                metric,
                value,
            });
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parsing_skips_comments_and_keeps_labels() {
        let text = "# HELP rpx_a_b help\n# TYPE rpx_a_b counter\n\
                    rpx_a_b{instance=\"locality#0/worker-thread#1\"} 42\n\
                    rpx_a_b 7.5\nmalformed\n";
        let parsed = parse_exposition(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0].0,
            "rpx_a_b{instance=\"locality#0/worker-thread#1\"}"
        );
        assert_eq!(parsed[0].1, 42.0);
        assert_eq!(parsed[1].1, 7.5);
    }

    #[test]
    fn merged_csv_escapes_fields() {
        let merged = Merged {
            rows: vec![MergedRow {
                source: "127.0.0.1:9100".into(),
                metric: "rpx_x{params=\"w,5\"}".into(),
                value: 1.0,
            }],
        };
        let csv = merged.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "source,metric,value");
        // The metric contains a comma and quotes: RFC 4180 requires the
        // field quoted with inner quotes doubled.
        assert_eq!(
            csv.lines().nth(1).unwrap(),
            "127.0.0.1:9100,\"rpx_x{params=\"\"w,5\"\"}\",1"
        );
    }

    #[test]
    fn merged_json_is_parseable() {
        let merged = Merged {
            rows: vec![MergedRow {
                source: "a".into(),
                metric: "m".into(),
                value: 2.5,
            }],
        };
        let parsed: serde_json::Value = serde_json::from_str(&merged.to_json()).unwrap();
        assert_eq!(parsed[0]["source"], "a");
        assert_eq!(parsed[0]["value"], 2.5);
    }
}
