//! Serve live telemetry for a runtime under a fib workload.
//!
//! Starts the lightweight runtime, exports its counters over HTTP
//! (`/metrics`) and the binary stream on one port, and keeps a fib load
//! running so there is something to watch. Prints `listening on <addr>`
//! once the port is bound — harnesses parse that line to find a
//! dynamically chosen port.
//!
//! ```sh
//! rpx-serve [--workers N] [--addr 127.0.0.1:0] [--interval-ms 1000]
//!           [--fib 24] [--duration-ms 0] [--assert-overhead-pct 0]
//! ```
//!
//! With `--duration-ms D` the process runs the load for D ms, prints a
//! self-measurement summary (scrape count, scrape time, payload bytes,
//! overhead relative to cumulative task execution time) and exits; with
//! `--assert-overhead-pct P` it additionally exits non-zero when the
//! self-measured scrape overhead exceeds P percent — the CI smoke gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rpx_runtime::{Runtime, RuntimeConfig, RuntimeHandle};
use rpx_serve::server::{attach_runtime, ServeConfig, Server};

fn fib(h: &RuntimeHandle, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let h2 = h.clone();
    let a = h.spawn(move || fib(&h2, n - 1));
    let b = fib(h, n - 2);
    a.get() + b
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let interval_ms: u64 = arg_value(&args, "--interval-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let fib_n: u64 = arg_value(&args, "--fib")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let duration_ms: u64 = arg_value(&args, "--duration-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let assert_overhead_pct: u64 = arg_value(&args, "--assert-overhead-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let rt = Runtime::new(RuntimeConfig::with_workers(workers));
    let registry = rt.registry();
    let server = Server::start(
        &registry,
        ServeConfig {
            addr,
            interval: Duration::from_millis(interval_ms.max(1)),
            specs: vec![
                "/threads{locality#0/worker-thread#*}/count/cumulative".into(),
                "/threads{locality#0/total}/count/cumulative".into(),
                "/threads{locality#0/total}/time/cumulative".into(),
                "/threads{locality#0/total}/time/average".into(),
                "/threads{locality#0/total}/time/average-overhead".into(),
                "/threads{locality#0/total}/idle-rate".into(),
                "/counters/serve/scrape-count".into(),
                "/counters/serve/scrape-time".into(),
                "/counters/serve/bytes".into(),
                "/counters/serve/dropped".into(),
            ],
            ..ServeConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("rpx-serve: {e}");
        std::process::exit(2);
    });
    attach_runtime(&rt, &server);
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Background load: keep re-running fib until asked to stop.
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let h = rt.handle();
    let load = std::thread::spawn(move || {
        while !stop2.load(Ordering::Relaxed) {
            let _ = fib(&h, fib_n);
        }
    });

    if duration_ms == 0 {
        // Run until stdin closes (or forever when detached).
        let mut sink = String::new();
        let _ = std::io::stdin().read_line(&mut sink);
    } else {
        std::thread::sleep(Duration::from_millis(duration_ms));
    }

    stop.store(true, Ordering::Relaxed);
    let _ = load.join();
    rt.wait_idle();

    let read = |name: &str| {
        registry
            .evaluate(name, false)
            .map(|v| v.value)
            .unwrap_or_default()
    };
    let scrape_count = read("/counters/serve/scrape-count");
    let scrape_ns = read("/counters/serve/scrape-time");
    let bytes = read("/counters/serve/bytes");
    let dropped = read("/counters/serve/dropped");
    let exec_ns = read("/threads{locality#0/total}/time/cumulative");
    let overhead_pct = if exec_ns > 0 {
        scrape_ns as f64 * 100.0 / exec_ns as f64
    } else {
        0.0
    };
    println!("/counters/serve/scrape-count   {scrape_count}");
    println!("/counters/serve/scrape-time    {scrape_ns} ns");
    println!("/counters/serve/bytes          {bytes}");
    println!("/counters/serve/dropped        {dropped}");
    println!("/threads/time/cumulative       {exec_ns} ns");
    println!("serve-overhead                 {overhead_pct:.3} %");

    server.shutdown();
    rt.shutdown();

    if assert_overhead_pct > 0 && overhead_pct > assert_overhead_pct as f64 {
        eprintln!(
            "rpx-serve: scrape overhead {overhead_pct:.3}% exceeds the \
             {assert_overhead_pct}% envelope"
        );
        std::process::exit(1);
    }
}
