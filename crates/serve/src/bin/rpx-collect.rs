//! Scrape N `rpx-serve` endpoints and emit one merged table.
//!
//! ```sh
//! rpx-collect 127.0.0.1:9100 127.0.0.1:9101 [--format csv|json]
//!             [--samples 1] [--interval-ms 1000] [--out FILE]
//! ```
//!
//! Each sample round scrapes every endpoint's `/metrics` and appends the
//! merged rows (`source,metric,value`). A failing endpoint aborts the
//! round with a non-zero exit — partial aggregates mislead.

use std::io::Write;
use std::time::Duration;

use rpx_serve::collect::{scrape_and_merge, Merged};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoints: Vec<String> = Vec::new();
    let mut format = "csv".to_string();
    let mut samples: u64 = 1;
    let mut interval_ms: u64 = 1000;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => format = it.next().unwrap_or_default(),
            "--samples" => samples = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--interval-ms" => interval_ms = it.next().and_then(|v| v.parse().ok()).unwrap_or(1000),
            "--out" => out_path = it.next(),
            _ => endpoints.push(arg),
        }
    }
    if endpoints.is_empty() {
        eprintln!("usage: rpx-collect <endpoint>... [--format csv|json] [--samples N] [--interval-ms M] [--out FILE]");
        std::process::exit(2);
    }

    let mut merged = Merged::default();
    for round in 0..samples.max(1) {
        if round > 0 {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        match scrape_and_merge(&endpoints) {
            Ok(m) => merged.rows.extend(m.rows),
            Err(e) => {
                eprintln!("rpx-collect: {e}");
                std::process::exit(1);
            }
        }
    }

    let rendered = match format.as_str() {
        "json" => merged.to_json(),
        "csv" => merged.to_csv(),
        other => {
            eprintln!("rpx-collect: unknown format {other:?} (csv|json)");
            std::process::exit(2);
        }
    };
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("rpx-collect: write {path}: {e}");
                std::process::exit(1);
            }
        }
        None => {
            let mut stdout = std::io::stdout();
            let _ = stdout.write_all(rendered.as_bytes());
        }
    }
}
