//! The counter registry: counter *types* are registered with a factory and
//! a discovery function; counter *instances* are created (and cached) on
//! demand when a name is resolved; an *active set* supports the paper's
//! `evaluate_active_counters` / `reset_active_counters` protocol.
//!
//! # Snapshot-based query engine
//!
//! The active set is published as an immutable [`ActiveSnapshot`]: readers
//! (`evaluate_active_counters`, the [`Sampler`](crate::sampler::Sampler)
//! tick, `active_names`) clone one `Arc` and then call
//! [`Counter::get_value`] with **no registry lock held**, so a counter may
//! freely re-enter the registry — resolve children, list the active set,
//! evaluate other counters — without self-deadlocking, and concurrent
//! `add_active`/`remove_active` calls never serialize against a running
//! evaluation. Writers rebuild and atomically publish a new snapshot.
//!
//! Wildcard queries are *live*: the snapshot stores the originating queries
//! plus a registry **generation** stamp. Any topology change (a counter
//! type registered or unregistered late, a worker respawned by the runtime
//! watchdog — signalled through [`CounterRegistry::bump_generation`]) makes
//! the published snapshot stale, and the next evaluation re-expands the
//! queries against the current instance population. See DESIGN.md §12 for
//! the full protocol and its memory-ordering argument.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use crate::prim::{mutation_armed, AtomicU64, Mutex, Ordering, RwLock};

use crate::counter::{AverageCounter, ElapsedTimeCounter, MonotonicCounter, RawCounter};
use crate::counter::{Clock, Counter, PairFn, ValueCell, ValueFn};
use crate::error::CounterError;
use crate::name::{CounterInstance, CounterName, InstanceIndex};
use crate::value::{CounterInfo, CounterKind, CounterValue};

/// Factory creating a counter instance for a concrete (non-wildcard) name.
/// The registry is passed so derived counters can resolve their children;
/// no registry locks are held during the call.
pub type CounterFactory = Arc<
    dyn Fn(&CounterName, &Arc<CounterRegistry>) -> Result<Arc<dyn Counter>, CounterError>
        + Send
        + Sync,
>;

/// Discovery function enumerating the concrete instances of a counter type.
pub type CounterDiscoverer = Arc<dyn Fn(&mut dyn FnMut(CounterName)) + Send + Sync>;

/// A wildcard-expanded resolution result: concrete names with their live
/// counter instances.
pub type ResolvedCounters = Vec<(CounterName, Arc<dyn Counter>)>;

struct CounterTypeEntry {
    info: CounterInfo,
    factory: CounterFactory,
    discoverer: Option<CounterDiscoverer>,
}

/// One resolved entry of an [`ActiveSnapshot`]: a concrete name, its
/// canonical string (cached — rendering a name allocates), and the live
/// counter handle.
pub struct ActiveHandle {
    /// The concrete (wildcard-expanded) counter name.
    pub name: CounterName,
    /// `name.canonical()`, cached at snapshot build time.
    pub canonical: String,
    /// The resolved counter instance.
    pub counter: Arc<dyn Counter>,
}

/// An immutable, atomically published view of the resolved active set.
///
/// Evaluation paths clone the `Arc<ActiveSnapshot>` and drop every registry
/// lock before touching a counter; the `generation` stamp records which
/// registry topology the wildcard expansion saw, so readers can detect
/// staleness with one atomic load.
pub struct ActiveSnapshot {
    /// Registry generation the expansion was taken against.
    pub generation: u64,
    /// Resolved entries in query insertion order (deduplicated).
    pub entries: Vec<ActiveHandle>,
}

impl ActiveSnapshot {
    fn empty() -> Arc<Self> {
        Arc::new(ActiveSnapshot {
            generation: 0,
            entries: Vec::new(),
        })
    }
}

/// Mutable active-set configuration: the originating queries (wildcards
/// preserved) and concrete names explicitly removed from underneath a
/// wildcard query. Guarded by one mutex that is **never** held across a
/// `Counter::get_value` call; it only serializes snapshot rebuilds.
#[derive(Default)]
struct ActiveConfig {
    queries: Vec<CounterName>,
    excluded: HashSet<String>,
}

/// Central registry of counter types and live counter instances.
///
/// One registry exists per runtime (per "locality"); every subsystem
/// registers its counter types here and every consumer resolves names here.
pub struct CounterRegistry {
    clock: Arc<Clock>,
    types: RwLock<BTreeMap<String, CounterTypeEntry>>,
    instances: RwLock<HashMap<String, Arc<dyn Counter>>>,
    /// Active-set configuration (queries + exclusions); serializes rebuilds.
    active: Mutex<ActiveConfig>,
    /// The published resolved active set. The lock guards only the pointer
    /// swap — readers clone the `Arc` and release immediately.
    snapshot: RwLock<Arc<ActiveSnapshot>>,
    /// Topology generation: bumped on type (un)registration and by the
    /// runtime on worker respawn; a snapshot whose stamp lags this value is
    /// re-expanded on the next evaluation.
    generation: AtomicU64,
    /// Self-measurement: cumulative wall time spent evaluating active /
    /// sampled batches, exposed as `/counters/overhead/time`.
    overhead_time_ns: AtomicU64,
    /// Self-measurement: number of batches evaluated
    /// (`/counters/overhead/count`).
    overhead_batches: AtomicU64,
}

impl CounterRegistry {
    /// An empty registry with a fresh clock. Builtin derived counter types
    /// (`/arithmetics/*`, `/statistics/*`) and the self-measurement
    /// counters (`/counters/overhead/*`) are registered automatically.
    pub fn new() -> Arc<Self> {
        let reg = Arc::new(CounterRegistry {
            clock: Arc::new(Clock::new()),
            types: RwLock::new(BTreeMap::new()),
            instances: RwLock::new(HashMap::new()),
            active: Mutex::new(ActiveConfig::default()),
            snapshot: RwLock::new(ActiveSnapshot::empty()),
            generation: AtomicU64::new(1),
            overhead_time_ns: AtomicU64::new(0),
            overhead_batches: AtomicU64::new(0),
        });
        crate::derived::register_arithmetics(&reg);
        crate::histogram::register_histogram(&reg);
        crate::statistics::register_statistics(&reg);
        register_overhead_counters(&reg);
        reg
    }

    /// The registry's monotonic clock (shared with its counters).
    pub fn clock(&self) -> Arc<Clock> {
        self.clock.clone()
    }

    // ------------------------------------------------------------------
    // Type registration & discovery
    // ------------------------------------------------------------------

    /// Register a counter type. `info.name` must be the type path
    /// (`/object/countername`). Re-registration replaces the entry.
    /// Registration bumps the topology [generation](Self::generation), so
    /// live wildcard queries pick the new type's instances up on their
    /// next evaluation.
    pub fn register_type(
        &self,
        info: CounterInfo,
        factory: CounterFactory,
        discoverer: Option<CounterDiscoverer>,
    ) {
        let key = info.name.clone();
        self.types.write().insert(
            key,
            CounterTypeEntry {
                info,
                factory,
                discoverer,
            },
        );
        self.bump_generation();
    }

    /// Remove a counter type and all cached instances of it. Bumps the
    /// topology [generation](Self::generation).
    pub fn unregister_type(&self, type_path: &str) {
        self.types.write().remove(type_path);
        let prefix_obj = type_path.to_owned();
        self.instances.write().retain(|name, _| {
            name.parse::<CounterName>()
                .map(|n| n.type_path() != prefix_obj)
                .unwrap_or(true)
        });
        self.bump_generation();
    }

    /// The current topology generation. Snapshots and
    /// [`ResolvedQuery`](crate::query::ResolvedQuery) handles stamped with
    /// an older value re-expand their wildcards before the next use.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Advance the topology generation, invalidating every published
    /// snapshot and cached query resolution. Called internally on type
    /// (un)registration; the runtime calls it when the instance population
    /// behind a discoverer changes (e.g. a worker was respawned by the
    /// watchdog supervisor) so running samplers re-expand `worker-thread#*`
    /// wildcards.
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Metadata of every registered counter type, sorted by type path.
    pub fn counter_types(&self) -> Vec<CounterInfo> {
        self.types.read().values().map(|e| e.info.clone()).collect()
    }

    /// Metadata for one type path, if registered.
    pub fn type_info(&self, type_path: &str) -> Option<CounterInfo> {
        self.types.read().get(type_path).map(|e| e.info.clone())
    }

    /// Enumerate the concrete instances a type advertises via its
    /// discoverer (empty if the type has no discoverer).
    pub fn discover_instances(&self, type_path: &str) -> Vec<CounterName> {
        let types = self.types.read();
        let mut out = Vec::new();
        if let Some(entry) = types.get(type_path) {
            if let Some(d) = &entry.discoverer {
                d(&mut |n| out.push(n));
            }
        }
        out
    }

    /// Enumerate every discoverable concrete counter name in the registry.
    pub fn discover_all(&self) -> Vec<CounterName> {
        let discoverers: Vec<CounterDiscoverer> = self
            .types
            .read()
            .values()
            .filter_map(|e| e.discoverer.clone())
            .collect();
        let mut out = Vec::new();
        for d in discoverers {
            d(&mut |n| out.push(n));
        }
        out
    }

    // ------------------------------------------------------------------
    // Instance resolution
    // ------------------------------------------------------------------

    /// Expand a possibly-wildcard name into concrete names.
    ///
    /// Non-wildcard names pass through unchanged (as a single-element vec).
    /// Wildcards are matched against the type's discovered instances.
    pub fn expand(&self, name: &CounterName) -> Result<Vec<CounterName>, CounterError> {
        if !name.has_wildcard() {
            return Ok(vec![name.clone()]);
        }
        let candidates = self.discover_instances(&name.type_path());
        if candidates.is_empty() {
            return Err(CounterError::UnknownInstance(format!(
                "no discoverable instances for wildcard name `{name}`"
            )));
        }
        let mut out: Vec<CounterName> = candidates
            .into_iter()
            .filter(|c| wildcard_matches(name, c))
            .map(|mut c| {
                c.parameters = name.parameters.clone();
                c
            })
            .collect();
        out.sort_by_key(|n| n.to_string());
        if out.is_empty() {
            return Err(CounterError::UnknownInstance(format!(
                "wildcard name `{name}` matched no instances"
            )));
        }
        Ok(out)
    }

    /// Resolve a concrete name to a live counter, creating and caching it on
    /// first use. Wildcard names are rejected — call [`expand`](Self::expand)
    /// first.
    pub fn get_counter(
        self: &Arc<Self>,
        name: &CounterName,
    ) -> Result<Arc<dyn Counter>, CounterError> {
        if name.has_wildcard() {
            return Err(CounterError::InvalidName(format!(
                "cannot instantiate wildcard name `{name}`; expand it first"
            )));
        }
        let canonical = name.canonical();
        if let Some(c) = self.instances.read().get(&canonical) {
            return Ok(c.clone());
        }
        let factory = {
            let types = self.types.read();
            let entry = types
                .get(&name.type_path())
                .ok_or_else(|| CounterError::UnknownCounterType(name.type_path()))?;
            entry.factory.clone()
        };
        // No locks held while the factory runs: derived-counter factories
        // recurse into `get_counter` for their children.
        let counter = factory(name, self)?;
        let mut instances = self.instances.write();
        let entry = instances.entry(canonical).or_insert_with(|| counter);
        Ok(entry.clone())
    }

    /// Resolve a name string (possibly wildcard) to all matching counters.
    pub fn get_counters(self: &Arc<Self>, name: &str) -> Result<ResolvedCounters, CounterError> {
        let parsed: CounterName = name.parse()?;
        let mut out = Vec::new();
        for n in self.expand(&parsed)? {
            let c = self.get_counter(&n)?;
            out.push((n, c));
        }
        Ok(out)
    }

    /// Evaluate one counter by name (convenience for one-shot queries).
    pub fn evaluate(
        self: &Arc<Self>,
        name: &str,
        reset: bool,
    ) -> Result<CounterValue, CounterError> {
        let parsed: CounterName = name.parse()?;
        Ok(self.get_counter(&parsed)?.get_value(reset))
    }

    /// Number of live (cached) counter instances.
    pub fn instance_count(&self) -> usize {
        self.instances.read().len()
    }

    // ------------------------------------------------------------------
    // Active set (the paper's measurement protocol)
    // ------------------------------------------------------------------

    /// Add counters (wildcards allowed) to the active set and `start` them.
    ///
    /// Resolution errors surface eagerly (an unknown type or a wildcard
    /// matching nothing is an error *now*), but the query itself stays
    /// live afterwards: instances appearing later under the same wildcard
    /// join the set on the evaluation after the next generation bump.
    /// Returns the number of concrete counters the call added.
    pub fn add_active(self: &Arc<Self>, name: &str) -> Result<usize, CounterError> {
        let parsed: CounterName = name.parse()?;
        // Validate eagerly, before mutating the configuration.
        for n in self.expand(&parsed)? {
            self.get_counter(&n)?;
        }
        let mut config = self.active.lock();
        let previous: HashSet<String> = self
            .snapshot
            .read()
            .entries
            .iter()
            .map(|e| e.canonical.clone())
            .collect();
        // Re-adding un-excludes: the freshest intent wins.
        if let Ok(names) = self.expand(&parsed) {
            for n in &names {
                config.excluded.remove(&n.canonical());
            }
        }
        if !config.queries.contains(&parsed) {
            config.queries.push(parsed);
        }
        let snap = self.rebuild_locked(&config);
        Ok(snap
            .entries
            .iter()
            .filter(|e| !previous.contains(&e.canonical))
            .count())
    }

    /// Remove counters from the active set and `stop` them.
    ///
    /// The name is parsed and canonicalized before matching, so any
    /// spelling that parses to the same structured name (`worker-thread#07`
    /// vs `worker-thread#7`, …) removes the counter it added. A name that
    /// matches a stored query (including a wildcard query) removes the
    /// whole query; a concrete name that was expanded *from* a wildcard
    /// query is excluded individually while the query stays live.
    pub fn remove_active(self: &Arc<Self>, name: &str) -> bool {
        // Unparseable input can still name a stored raw query string.
        let canonical = name
            .parse::<CounterName>()
            .map(|p| p.canonical())
            .unwrap_or_else(|_| name.to_owned());
        let mut config = self.active.lock();
        let before = config.queries.len();
        config.queries.retain(|q| q.canonical() != canonical);
        let mut removed = config.queries.len() != before;
        if !removed {
            // Not a stored query — maybe a concrete expansion of one.
            let covered = self
                .snapshot
                .read()
                .entries
                .iter()
                .any(|e| e.canonical == canonical);
            if covered {
                removed = config.excluded.insert(canonical);
            }
        }
        if removed {
            self.rebuild_locked(&config);
        }
        removed
    }

    /// Canonical names currently in the active set, in query insertion
    /// order. Holds no lock while returning — safe to call from inside a
    /// counter's `get_value`.
    pub fn active_names(self: &Arc<Self>) -> Vec<String> {
        self.active_snapshot()
            .entries
            .iter()
            .map(|e| e.canonical.clone())
            .collect()
    }

    /// The current resolved active set, re-expanded first if the registry
    /// topology moved since it was published. The returned snapshot is
    /// immutable; callers iterate it without any registry lock.
    pub fn active_snapshot(self: &Arc<Self>) -> Arc<ActiveSnapshot> {
        let snap = self.snapshot.read().clone();
        if snap.generation == self.generation() {
            return snap;
        }
        let config = self.active.lock();
        self.rebuild_locked(&config)
    }

    /// Re-expand the active queries and publish a fresh snapshot. The
    /// `active` mutex (held by the caller) serializes rebuilds; expansion
    /// and instantiation take only the short-lived `types`/`instances`
    /// locks, never across a counter call. Queries that currently match
    /// nothing stay stored and contribute no entries.
    fn rebuild_locked(self: &Arc<Self>, config: &ActiveConfig) -> Arc<ActiveSnapshot> {
        // Stamp before expanding: a concurrent bump mid-expansion leaves
        // the published snapshot stale, so the next reader re-expands —
        // changes are never lost, at worst re-observed once more.
        let mut generation = self.generation();
        let mut entries = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        for query in &config.queries {
            let Ok(names) = self.expand(query) else {
                continue;
            };
            for name in names {
                let canonical = name.canonical();
                if config.excluded.contains(&canonical) || !seen.insert(canonical.clone()) {
                    continue;
                }
                if let Ok(counter) = self.get_counter(&name) {
                    entries.push(ActiveHandle {
                        name,
                        canonical,
                        counter,
                    });
                }
            }
        }
        if mutation_armed("registry-stamp-after-expand") {
            // Mutant: stamping *after* expansion lets a concurrent bump
            // land mid-expansion and mark a stale expansion as fresh —
            // the lost-topology-change the model-checked registry spec
            // must catch.
            generation = self.generation();
        }
        let snap = Arc::new(ActiveSnapshot {
            generation,
            entries,
        });
        let previous = {
            let mut w = self.snapshot.write();
            std::mem::replace(&mut *w, snap.clone())
        };
        // Lifecycle diff: start counters entering the set, stop leavers.
        let old: HashSet<&str> = previous
            .entries
            .iter()
            .map(|e| e.canonical.as_str())
            .collect();
        let new: HashSet<&str> = snap.entries.iter().map(|e| e.canonical.as_str()).collect();
        for e in snap
            .entries
            .iter()
            .filter(|e| !old.contains(e.canonical.as_str()))
        {
            e.counter.start();
        }
        for e in previous
            .entries
            .iter()
            .filter(|e| !new.contains(e.canonical.as_str()))
        {
            e.counter.stop();
        }
        snap
    }

    /// Evaluate every active counter (the paper's
    /// `hpx::evaluate_active_counters`). With `reset`, accumulation restarts
    /// atomically with the read.
    ///
    /// No registry lock is held across any `get_value` call: the resolved
    /// set is an immutable snapshot, so counters may re-enter the registry
    /// and concurrent `add_active`/`remove_active` calls never block the
    /// evaluation (they publish a new snapshot for the *next* batch). The
    /// batch's wall time is accumulated into `/counters/overhead/time`.
    pub fn evaluate_active_counters(self: &Arc<Self>, reset: bool) -> Vec<(String, CounterValue)> {
        let t0 = self.clock.now_ns();
        let snap = self.active_snapshot();
        let out: Vec<(String, CounterValue)> = snap
            .entries
            .iter()
            .map(|e| (e.canonical.clone(), e.counter.get_value(reset)))
            .collect();
        self.record_query_overhead(self.clock.now_ns().saturating_sub(t0), 1);
        out
    }

    /// Reset every active counter without reading
    /// (`hpx::reset_active_counters`). Lock-free against evaluations, like
    /// [`evaluate_active_counters`](Self::evaluate_active_counters).
    pub fn reset_active_counters(self: &Arc<Self>) {
        let snap = self.active_snapshot();
        for e in snap.entries.iter() {
            e.counter.reset();
        }
    }

    /// Fold one evaluated batch into the self-measurement counters
    /// (`/counters/overhead/time`, `/counters/overhead/count`). Called by
    /// the active-set evaluation and by the
    /// [`Sampler`](crate::sampler::Sampler) tick.
    pub fn record_query_overhead(&self, elapsed_ns: u64, batches: u64) {
        self.overhead_time_ns
            .fetch_add(elapsed_ns, Ordering::Relaxed);
        self.overhead_batches.fetch_add(batches, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Convenience registration helpers for simple single-instance types
    // ------------------------------------------------------------------

    /// Register a pull-based raw gauge under `type_path`, instantiable with
    /// any (or no) instance name.
    pub fn register_raw(self: &Arc<Self>, type_path: &str, help: &str, unit: &str, read: ValueFn) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::Raw, help, unit);
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(Arc::new(RawCounter::new(i, clock.clone(), read.clone())) as Arc<dyn Counter>)
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register a pull-based monotonic counter under `type_path`.
    pub fn register_monotonic(
        self: &Arc<Self>,
        type_path: &str,
        help: &str,
        unit: &str,
        read: ValueFn,
    ) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::MonotonicallyIncreasing, help, unit);
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(
                    Arc::new(MonotonicCounter::new(i, clock.clone(), read.clone()))
                        as Arc<dyn Counter>,
                )
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register a (sum, count) average counter under `type_path`.
    pub fn register_average(
        self: &Arc<Self>,
        type_path: &str,
        help: &str,
        unit: &str,
        read: PairFn,
    ) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::Average, help, unit);
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(
                    Arc::new(AverageCounter::new(i, clock.clone(), read.clone()))
                        as Arc<dyn Counter>,
                )
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register an elapsed-time counter under `type_path`.
    pub fn register_elapsed(self: &Arc<Self>, type_path: &str, help: &str) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::ElapsedTime, help, "ns");
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(Arc::new(ElapsedTimeCounter::new(i, clock.clone())) as Arc<dyn Counter>)
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register an application-owned settable value; returns the cell the
    /// application writes through. The counter is immediately instantiable
    /// under `type_path`.
    pub fn register_value(
        self: &Arc<Self>,
        type_path: &str,
        help: &str,
        unit: &str,
    ) -> Arc<ValueCell> {
        let info = CounterInfo::new(type_path, CounterKind::Raw, help, unit);
        let cell = Arc::new(ValueCell::new(info.clone(), self.clock()));
        let c2 = cell.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                // All instances of an app value share the one cell.
                let _ = name;
                Ok(c2.clone() as Arc<dyn Counter>)
            }),
            single_instance_discoverer(type_path),
        );
        cell
    }
}

impl std::fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterRegistry")
            .field("types", &self.types.read().len())
            .field("instances", &self.instances.read().len())
            .field("active", &self.snapshot.read().entries.len())
            .field("generation", &self.generation())
            .finish()
    }
}

/// Register the self-measurement counters:
/// `/counters{locality#0/total}/overhead/time` (cumulative evaluation wall
/// time, ns), `/counters{locality#0/total}/overhead/count` (batches
/// evaluated), and `/counters{locality#0/total}/health/average-underflows`
/// (average-counter sources observed going backwards). Factories hold only
/// a `Weak` back-reference so the registry is not kept alive by its own
/// counters.
fn register_overhead_counters(reg: &Arc<CounterRegistry>) {
    type OverheadRead = fn(&CounterRegistry) -> i64;
    let specs: [(&str, &str, &str, OverheadRead); 4] = [
        (
            "/counters/overhead/time",
            "cumulative wall time spent evaluating counter batches",
            "ns",
            |r| r.overhead_time_ns.load(Ordering::Relaxed) as i64,
        ),
        (
            "/counters/overhead/count",
            "number of counter batches evaluated",
            "1",
            |r| r.overhead_batches.load(Ordering::Relaxed) as i64,
        ),
        (
            "/counters/health/average-underflows",
            "times an average counter's (sum, count) source went backwards \
             past its baseline (nonzero means a broken source)",
            "1",
            |_| crate::counter::average_underflows() as i64,
        ),
        (
            "/counters/clock/recalibrations",
            "times the TSC clock multiplier was re-derived by the periodic \
             drift cross-check against Instant",
            "1",
            |r| r.clock.recalibrations() as i64,
        ),
    ];
    for (path, help, unit, read) in specs {
        let weak = Arc::downgrade(reg);
        let value: ValueFn = Arc::new(move || weak.upgrade().map_or(0, |r| read(&r)));
        let clock = reg.clock();
        let info = CounterInfo::new(path, CounterKind::MonotonicallyIncreasing, help, unit);
        let info2 = info.clone();
        let advertised: CounterName = match path.parse::<CounterName>() {
            Ok(n) => n.with_instance(CounterInstance::total(0)),
            Err(_) => continue,
        };
        reg.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(
                    Arc::new(MonotonicCounter::new(i, clock.clone(), value.clone()))
                        as Arc<dyn Counter>,
                )
            }),
            Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| {
                f(advertised.clone())
            })),
        );
    }
    // Signed gauge: the last TSC−Instant error a completed drift check
    // observed (ppm). Raw, not monotonic — it moves both ways.
    let weak = Arc::downgrade(reg);
    reg.register_raw(
        "/counters/clock/drift-ppm",
        "last signed TSC-vs-Instant relative error observed by the drift \
         cross-check (ppm; 0 on Instant-backed clocks)",
        "ppm",
        Arc::new(move || weak.upgrade().map_or(0, |r| r.clock.last_drift_ppm())),
    );
}

/// Discoverer advertising exactly the bare type path as the only instance.
fn single_instance_discoverer(type_path: &str) -> Option<CounterDiscoverer> {
    let name: Result<CounterName, _> = type_path.parse();
    match name {
        Ok(n) => Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| f(n.clone()))),
        Err(_) => None,
    }
}

/// Whether concrete name `c` is matched by wildcard pattern `p`.
/// Object and counter must be equal; instance parts match per-component,
/// `#*` matching any concrete index.
fn wildcard_matches(p: &CounterName, c: &CounterName) -> bool {
    if p.object != c.object || p.counter != c.counter {
        return false;
    }
    let (pi, ci) = match (&p.instance, &c.instance) {
        (Some(pi), Some(ci)) => (pi, ci),
        (None, None) => return true,
        _ => return false,
    };
    if pi.children.len() != ci.children.len() {
        return false;
    }
    let part_matches = |pp: &crate::name::InstancePart, cp: &crate::name::InstancePart| -> bool {
        if pp.name != cp.name {
            return false;
        }
        match (&pp.index, &cp.index) {
            (Some(InstanceIndex::All), Some(InstanceIndex::At(_))) => true,
            (a, b) => a == b,
        }
    };
    part_matches(&pi.parent, &ci.parent)
        && pi
            .children
            .iter()
            .zip(&ci.children)
            .all(|(a, b)| part_matches(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::CounterInstance;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn register_and_evaluate_raw() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(3));
        let v2 = v.clone();
        reg.register_raw(
            "/test/value",
            "a test value",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        assert_eq!(reg.evaluate("/test/value", false).unwrap().value, 3);
        v.store(8, Ordering::Relaxed);
        assert_eq!(reg.evaluate("/test/value", false).unwrap().value, 8);
    }

    #[test]
    fn unknown_type_is_an_error() {
        let reg = CounterRegistry::new();
        let e = reg.evaluate("/no/such", false).unwrap_err();
        assert!(matches!(e, CounterError::UnknownCounterType(_)));
    }

    #[test]
    fn instances_are_cached() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let n: CounterName = "/test/value".parse().unwrap();
        let a = reg.get_counter(&n).unwrap();
        let b = reg.get_counter(&n).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.instance_count(), 1);
    }

    #[test]
    fn wildcard_rejected_without_expand() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let n: CounterName = "/test{locality#0/worker-thread#*}/value".parse().unwrap();
        assert!(reg.get_counter(&n).is_err());
    }

    #[test]
    fn wildcard_expansion_uses_discoverer() {
        let reg = CounterRegistry::new();
        let info = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
        let clock = reg.clock();
        reg.register_type(
            info.clone(),
            Arc::new(move |name, _| {
                let mut i = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
                i.name = name.canonical();
                // Value = worker index, to check instance routing.
                let idx = match &name.instance {
                    Some(inst) => match inst.children.first().and_then(|c| c.index.as_ref()) {
                        Some(InstanceIndex::At(i)) => *i as i64,
                        _ => -1,
                    },
                    None => -1,
                };
                Ok(
                    Arc::new(RawCounter::new(i, clock.clone(), Arc::new(move || idx)))
                        as Arc<dyn Counter>,
                )
            }),
            Some(Arc::new(|f: &mut dyn FnMut(CounterName)| {
                for w in 0..4 {
                    f(CounterName::new("threads", "count")
                        .with_instance(CounterInstance::worker(0, w)));
                }
                f(CounterName::new("threads", "count").with_instance(CounterInstance::total(0)));
            })),
        );

        let resolved = reg
            .get_counters("/threads{locality#0/worker-thread#*}/count")
            .unwrap();
        assert_eq!(resolved.len(), 4);
        let values: Vec<i64> = resolved
            .iter()
            .map(|(_, c)| c.get_value(false).value)
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn expansion_error_when_nothing_matches() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        // The single-instance discoverer advertises only the bare path, so
        // a worker wildcard matches nothing.
        let err = match reg.get_counters("/test{locality#0/worker-thread#*}/value") {
            Ok(_) => panic!("expected wildcard expansion to fail"),
            Err(e) => e,
        };
        assert!(matches!(err, CounterError::UnknownInstance(_)));
    }

    #[test]
    fn active_set_protocol() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_monotonic(
            "/test/mono",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        assert_eq!(reg.add_active("/test/mono").unwrap(), 1);
        // Duplicate adds are ignored.
        assert_eq!(reg.add_active("/test/mono").unwrap(), 0);
        assert_eq!(reg.active_names(), vec!["/test/mono".to_string()]);

        v.store(5, Ordering::Relaxed);
        let vals = reg.evaluate_active_counters(true);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].1.value, 5);

        v.store(7, Ordering::Relaxed);
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals[0].1.value, 2, "evaluate(reset) must rebaseline");

        reg.reset_active_counters();
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals[0].1.value, 0);

        assert!(reg.remove_active("/test/mono"));
        assert!(!reg.remove_active("/test/mono"));
        assert!(reg.evaluate_active_counters(false).is_empty());
    }

    #[test]
    fn value_cell_round_trip() {
        let reg = CounterRegistry::new();
        let cell = reg.register_value("/app/progress", "app progress", "%");
        cell.set(42);
        assert_eq!(reg.evaluate("/app/progress", false).unwrap().value, 42);
    }

    #[test]
    fn counter_types_lists_builtins_and_registered() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let types = reg.counter_types();
        let names: Vec<&str> = types.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"/test/value"));
        assert!(names.contains(&"/arithmetics/add"));
        assert!(names.contains(&"/statistics/average"));
    }

    #[test]
    fn unregister_removes_type_and_instances() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let _ = reg.evaluate("/test/value", false).unwrap();
        assert_eq!(reg.instance_count(), 1);
        reg.unregister_type("/test/value");
        assert!(reg.evaluate("/test/value", false).is_err());
        assert_eq!(reg.instance_count(), 0);
    }

    #[test]
    fn type_info_round_trip() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "the help", "µs", Arc::new(|| 1));
        let info = reg.type_info("/test/value").unwrap();
        assert_eq!(info.help, "the help");
        assert_eq!(info.unit, "µs");
        assert!(reg.type_info("/nope/x").is_none());
    }

    /// Register a worker-style type whose discoverer advertises however
    /// many workers `count` currently says exist — a stand-in for the
    /// runtime's live topology.
    fn register_growable(reg: &Arc<CounterRegistry>, count: Arc<AtomicI64>) {
        let info = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
        let clock = reg.clock();
        reg.register_type(
            info,
            Arc::new(move |name, _| {
                let mut i = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
                i.name = name.canonical();
                Ok(Arc::new(RawCounter::new(i, clock.clone(), Arc::new(|| 1))) as Arc<dyn Counter>)
            }),
            Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| {
                for w in 0..count.load(Ordering::Relaxed) {
                    f(CounterName::new("threads", "count")
                        .with_instance(CounterInstance::worker(0, w as u32)));
                }
            })),
        );
    }

    #[test]
    fn wildcard_active_query_tracks_topology_changes() {
        let reg = CounterRegistry::new();
        let workers = Arc::new(AtomicI64::new(2));
        register_growable(&reg, workers.clone());

        let added = reg
            .add_active("/threads{locality#0/worker-thread#*}/count")
            .unwrap();
        assert_eq!(added, 2);
        assert_eq!(reg.evaluate_active_counters(false).len(), 2);

        // Topology grows (e.g. a worker respawned with a new slot); the
        // query is live, so one generation bump re-expands it.
        workers.store(3, Ordering::Relaxed);
        reg.bump_generation();
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals.len(), 3, "new instance joins within one evaluation");
        assert!(vals
            .iter()
            .any(|(n, _)| n == "/threads{locality#0/worker-thread#2}/count"));

        workers.store(1, Ordering::Relaxed);
        reg.bump_generation();
        assert_eq!(reg.evaluate_active_counters(false).len(), 1);
    }

    #[test]
    fn reentrant_counter_in_active_set_does_not_deadlock() {
        let reg = CounterRegistry::new();
        reg.register_raw("/src/child", "h", "1", Arc::new(|| 21));
        // A derived counter whose read path re-enters the registry: it
        // resolves and evaluates another counter *and* inspects the active
        // set while itself being evaluated from the active set.
        let weak = Arc::downgrade(&reg);
        reg.register_raw(
            "/derived/reentrant",
            "h",
            "1",
            Arc::new(move || {
                let Some(r) = weak.upgrade() else { return -1 };
                let names = r.active_names();
                assert!(names.iter().any(|n| n == "/derived/reentrant"));
                r.evaluate("/src/child", false).map_or(-1, |v| v.value * 2)
            }),
        );
        reg.add_active("/derived/reentrant").unwrap();
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].1.value, 42);
    }

    #[test]
    fn statistics_over_active_child_does_not_deadlock() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(10));
        let v2 = v.clone();
        reg.register_raw(
            "/src/child",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        reg.add_active("/src/child").unwrap();
        reg.add_active("/statistics/average@/src/child").unwrap();
        let mut last = CounterValue::empty(0);
        for x in [10, 20, 30] {
            v.store(x, Ordering::Relaxed);
            let vals = reg.evaluate_active_counters(false);
            assert_eq!(vals.len(), 2);
            last = vals
                .iter()
                .find(|(n, _)| n == "/statistics/average@/src/child")
                .unwrap()
                .1;
        }
        assert_eq!(last.scaled(), 20.0);
    }

    #[test]
    fn remove_active_canonicalizes_spelling() {
        let reg = CounterRegistry::new();
        let workers = Arc::new(AtomicI64::new(3));
        register_growable(&reg, workers);
        assert_eq!(
            reg.add_active("/threads{locality#0/worker-thread#2}/count")
                .unwrap(),
            1
        );
        // Leading-zero spelling parses to the same structured name.
        assert!(reg.remove_active("/threads{locality#00/worker-thread#02}/count"));
        assert!(reg.evaluate_active_counters(false).is_empty());
        assert!(!reg.remove_active("/threads{locality#0/worker-thread#2}/count"));
    }

    #[test]
    fn remove_one_expansion_keeps_wildcard_live() {
        let reg = CounterRegistry::new();
        let workers = Arc::new(AtomicI64::new(2));
        register_growable(&reg, workers.clone());
        reg.add_active("/threads{locality#0/worker-thread#*}/count")
            .unwrap();
        // Excluding one concrete expansion keeps the query itself live.
        assert!(reg.remove_active("/threads{locality#0/worker-thread#1}/count"));
        assert_eq!(
            reg.active_names(),
            vec!["/threads{locality#0/worker-thread#0}/count".to_string()]
        );
        // New instances still join; the exclusion sticks.
        workers.store(3, Ordering::Relaxed);
        reg.bump_generation();
        let names = reg.active_names();
        assert_eq!(names.len(), 2);
        assert!(!names
            .iter()
            .any(|n| n == "/threads{locality#0/worker-thread#1}/count"));
        // Re-adding clears the exclusion.
        reg.add_active("/threads{locality#0/worker-thread#*}/count")
            .unwrap();
        assert_eq!(reg.active_names().len(), 3);
    }

    #[test]
    fn overhead_counters_account_for_evaluations() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        reg.add_active("/test/value").unwrap();
        for _ in 0..64 {
            let _ = reg.evaluate_active_counters(false);
        }
        let count = reg
            .evaluate("/counters{locality#0/total}/overhead/count", false)
            .unwrap();
        assert!(count.value >= 64, "batch count tracks evaluations");
        let time = reg
            .evaluate("/counters{locality#0/total}/overhead/time", false)
            .unwrap();
        assert!(time.value > 0, "evaluation wall time accumulates");
        // The overhead counters are discoverable like any other type.
        let names = reg.discover_all();
        assert!(names
            .iter()
            .any(|n| n.canonical() == "/counters{locality#0/total}/overhead/time"));
    }

    #[test]
    fn evaluation_holds_no_registry_lock() {
        // A counter that mutates the registry *during* evaluation: with a
        // lock held across get_value this would deadlock; with snapshots it
        // must merely take effect on the next batch.
        let reg = CounterRegistry::new();
        let weak = Arc::downgrade(&reg);
        reg.register_raw(
            "/test/mutator",
            "h",
            "1",
            Arc::new(move || {
                if let Some(r) = weak.upgrade() {
                    r.register_raw("/late/arrival", "h", "1", Arc::new(|| 9));
                    let _ = r.add_active("/late/arrival");
                }
                1
            }),
        );
        reg.add_active("/test/mutator").unwrap();
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals.len(), 1, "current batch uses its own snapshot");
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals.len(), 2, "mutation lands on the next batch");
    }
}
