//! The counter registry: counter *types* are registered with a factory and
//! a discovery function; counter *instances* are created (and cached) on
//! demand when a name is resolved; an *active set* supports the paper's
//! `evaluate_active_counters` / `reset_active_counters` protocol.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::counter::{AverageCounter, ElapsedTimeCounter, MonotonicCounter, RawCounter};
use crate::counter::{Clock, Counter, PairFn, ValueCell, ValueFn};
use crate::error::CounterError;
use crate::name::{CounterName, InstanceIndex};
use crate::value::{CounterInfo, CounterKind, CounterValue};

/// Factory creating a counter instance for a concrete (non-wildcard) name.
/// The registry is passed so derived counters can resolve their children;
/// no registry locks are held during the call.
pub type CounterFactory = Arc<
    dyn Fn(&CounterName, &Arc<CounterRegistry>) -> Result<Arc<dyn Counter>, CounterError>
        + Send
        + Sync,
>;

/// Discovery function enumerating the concrete instances of a counter type.
pub type CounterDiscoverer = Arc<dyn Fn(&mut dyn FnMut(CounterName)) + Send + Sync>;

/// A wildcard-expanded resolution result: concrete names with their live
/// counter instances.
pub type ResolvedCounters = Vec<(CounterName, Arc<dyn Counter>)>;

struct CounterTypeEntry {
    info: CounterInfo,
    factory: CounterFactory,
    discoverer: Option<CounterDiscoverer>,
}

struct ActiveEntry {
    name: CounterName,
    counter: Arc<dyn Counter>,
}

/// Central registry of counter types and live counter instances.
///
/// One registry exists per runtime (per "locality"); every subsystem
/// registers its counter types here and every consumer resolves names here.
pub struct CounterRegistry {
    clock: Arc<Clock>,
    types: RwLock<BTreeMap<String, CounterTypeEntry>>,
    instances: RwLock<HashMap<String, Arc<dyn Counter>>>,
    active: Mutex<Vec<ActiveEntry>>,
}

impl CounterRegistry {
    /// An empty registry with a fresh clock. Builtin derived counter types
    /// (`/arithmetics/*`, `/statistics/*`) are registered automatically.
    pub fn new() -> Arc<Self> {
        let reg = Arc::new(CounterRegistry {
            clock: Arc::new(Clock::new()),
            types: RwLock::new(BTreeMap::new()),
            instances: RwLock::new(HashMap::new()),
            active: Mutex::new(Vec::new()),
        });
        crate::derived::register_arithmetics(&reg);
        crate::histogram::register_histogram(&reg);
        crate::statistics::register_statistics(&reg);
        reg
    }

    /// The registry's monotonic clock (shared with its counters).
    pub fn clock(&self) -> Arc<Clock> {
        self.clock.clone()
    }

    // ------------------------------------------------------------------
    // Type registration & discovery
    // ------------------------------------------------------------------

    /// Register a counter type. `info.name` must be the type path
    /// (`/object/countername`). Re-registration replaces the entry.
    pub fn register_type(
        &self,
        info: CounterInfo,
        factory: CounterFactory,
        discoverer: Option<CounterDiscoverer>,
    ) {
        let key = info.name.clone();
        self.types.write().insert(
            key,
            CounterTypeEntry {
                info,
                factory,
                discoverer,
            },
        );
    }

    /// Remove a counter type and all cached instances of it.
    pub fn unregister_type(&self, type_path: &str) {
        self.types.write().remove(type_path);
        let prefix_obj = type_path.to_owned();
        self.instances.write().retain(|name, _| {
            name.parse::<CounterName>()
                .map(|n| n.type_path() != prefix_obj)
                .unwrap_or(true)
        });
    }

    /// Metadata of every registered counter type, sorted by type path.
    pub fn counter_types(&self) -> Vec<CounterInfo> {
        self.types.read().values().map(|e| e.info.clone()).collect()
    }

    /// Metadata for one type path, if registered.
    pub fn type_info(&self, type_path: &str) -> Option<CounterInfo> {
        self.types.read().get(type_path).map(|e| e.info.clone())
    }

    /// Enumerate the concrete instances a type advertises via its
    /// discoverer (empty if the type has no discoverer).
    pub fn discover_instances(&self, type_path: &str) -> Vec<CounterName> {
        let types = self.types.read();
        let mut out = Vec::new();
        if let Some(entry) = types.get(type_path) {
            if let Some(d) = &entry.discoverer {
                d(&mut |n| out.push(n));
            }
        }
        out
    }

    /// Enumerate every discoverable concrete counter name in the registry.
    pub fn discover_all(&self) -> Vec<CounterName> {
        let discoverers: Vec<CounterDiscoverer> = self
            .types
            .read()
            .values()
            .filter_map(|e| e.discoverer.clone())
            .collect();
        let mut out = Vec::new();
        for d in discoverers {
            d(&mut |n| out.push(n));
        }
        out
    }

    // ------------------------------------------------------------------
    // Instance resolution
    // ------------------------------------------------------------------

    /// Expand a possibly-wildcard name into concrete names.
    ///
    /// Non-wildcard names pass through unchanged (as a single-element vec).
    /// Wildcards are matched against the type's discovered instances.
    pub fn expand(&self, name: &CounterName) -> Result<Vec<CounterName>, CounterError> {
        if !name.has_wildcard() {
            return Ok(vec![name.clone()]);
        }
        let candidates = self.discover_instances(&name.type_path());
        if candidates.is_empty() {
            return Err(CounterError::UnknownInstance(format!(
                "no discoverable instances for wildcard name `{name}`"
            )));
        }
        let mut out: Vec<CounterName> = candidates
            .into_iter()
            .filter(|c| wildcard_matches(name, c))
            .map(|mut c| {
                c.parameters = name.parameters.clone();
                c
            })
            .collect();
        out.sort_by_key(|n| n.to_string());
        if out.is_empty() {
            return Err(CounterError::UnknownInstance(format!(
                "wildcard name `{name}` matched no instances"
            )));
        }
        Ok(out)
    }

    /// Resolve a concrete name to a live counter, creating and caching it on
    /// first use. Wildcard names are rejected — call [`expand`](Self::expand)
    /// first.
    pub fn get_counter(
        self: &Arc<Self>,
        name: &CounterName,
    ) -> Result<Arc<dyn Counter>, CounterError> {
        if name.has_wildcard() {
            return Err(CounterError::InvalidName(format!(
                "cannot instantiate wildcard name `{name}`; expand it first"
            )));
        }
        let canonical = name.canonical();
        if let Some(c) = self.instances.read().get(&canonical) {
            return Ok(c.clone());
        }
        let factory = {
            let types = self.types.read();
            let entry = types
                .get(&name.type_path())
                .ok_or_else(|| CounterError::UnknownCounterType(name.type_path()))?;
            entry.factory.clone()
        };
        // No locks held while the factory runs: derived-counter factories
        // recurse into `get_counter` for their children.
        let counter = factory(name, self)?;
        let mut instances = self.instances.write();
        let entry = instances.entry(canonical).or_insert_with(|| counter);
        Ok(entry.clone())
    }

    /// Resolve a name string (possibly wildcard) to all matching counters.
    pub fn get_counters(self: &Arc<Self>, name: &str) -> Result<ResolvedCounters, CounterError> {
        let parsed: CounterName = name.parse()?;
        let mut out = Vec::new();
        for n in self.expand(&parsed)? {
            let c = self.get_counter(&n)?;
            out.push((n, c));
        }
        Ok(out)
    }

    /// Evaluate one counter by name (convenience for one-shot queries).
    pub fn evaluate(
        self: &Arc<Self>,
        name: &str,
        reset: bool,
    ) -> Result<CounterValue, CounterError> {
        let parsed: CounterName = name.parse()?;
        Ok(self.get_counter(&parsed)?.get_value(reset))
    }

    /// Number of live (cached) counter instances.
    pub fn instance_count(&self) -> usize {
        self.instances.read().len()
    }

    // ------------------------------------------------------------------
    // Active set (the paper's measurement protocol)
    // ------------------------------------------------------------------

    /// Add counters (wildcards allowed) to the active set and `start` them.
    pub fn add_active(self: &Arc<Self>, name: &str) -> Result<usize, CounterError> {
        let resolved = self.get_counters(name)?;
        let mut active = self.active.lock();
        let mut added = 0;
        for (n, c) in resolved {
            if active.iter().any(|e| e.name == n) {
                continue;
            }
            c.start();
            active.push(ActiveEntry {
                name: n,
                counter: c,
            });
            added += 1;
        }
        Ok(added)
    }

    /// Remove a counter (exact concrete name) from the active set.
    pub fn remove_active(&self, name: &str) -> bool {
        let mut active = self.active.lock();
        let before = active.len();
        active.retain(|e| {
            if e.name.canonical() == name {
                e.counter.stop();
                false
            } else {
                true
            }
        });
        active.len() != before
    }

    /// Names currently in the active set, in insertion order.
    pub fn active_names(&self) -> Vec<String> {
        self.active
            .lock()
            .iter()
            .map(|e| e.name.canonical())
            .collect()
    }

    /// Evaluate every active counter (the paper's
    /// `hpx::evaluate_active_counters`). With `reset`, accumulation restarts
    /// atomically with the read.
    pub fn evaluate_active_counters(&self, reset: bool) -> Vec<(String, CounterValue)> {
        self.active
            .lock()
            .iter()
            .map(|e| (e.name.canonical(), e.counter.get_value(reset)))
            .collect()
    }

    /// Reset every active counter without reading
    /// (`hpx::reset_active_counters`).
    pub fn reset_active_counters(&self) {
        for e in self.active.lock().iter() {
            e.counter.reset();
        }
    }

    // ------------------------------------------------------------------
    // Convenience registration helpers for simple single-instance types
    // ------------------------------------------------------------------

    /// Register a pull-based raw gauge under `type_path`, instantiable with
    /// any (or no) instance name.
    pub fn register_raw(self: &Arc<Self>, type_path: &str, help: &str, unit: &str, read: ValueFn) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::Raw, help, unit);
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(Arc::new(RawCounter::new(i, clock.clone(), read.clone())) as Arc<dyn Counter>)
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register a pull-based monotonic counter under `type_path`.
    pub fn register_monotonic(
        self: &Arc<Self>,
        type_path: &str,
        help: &str,
        unit: &str,
        read: ValueFn,
    ) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::MonotonicallyIncreasing, help, unit);
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(
                    Arc::new(MonotonicCounter::new(i, clock.clone(), read.clone()))
                        as Arc<dyn Counter>,
                )
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register a (sum, count) average counter under `type_path`.
    pub fn register_average(
        self: &Arc<Self>,
        type_path: &str,
        help: &str,
        unit: &str,
        read: PairFn,
    ) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::Average, help, unit);
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(
                    Arc::new(AverageCounter::new(i, clock.clone(), read.clone()))
                        as Arc<dyn Counter>,
                )
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register an elapsed-time counter under `type_path`.
    pub fn register_elapsed(self: &Arc<Self>, type_path: &str, help: &str) {
        let clock = self.clock();
        let info = CounterInfo::new(type_path, CounterKind::ElapsedTime, help, "ns");
        let info2 = info.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                let mut i = info2.clone();
                i.name = name.canonical();
                Ok(Arc::new(ElapsedTimeCounter::new(i, clock.clone())) as Arc<dyn Counter>)
            }),
            single_instance_discoverer(type_path),
        );
    }

    /// Register an application-owned settable value; returns the cell the
    /// application writes through. The counter is immediately instantiable
    /// under `type_path`.
    pub fn register_value(
        self: &Arc<Self>,
        type_path: &str,
        help: &str,
        unit: &str,
    ) -> Arc<ValueCell> {
        let info = CounterInfo::new(type_path, CounterKind::Raw, help, unit);
        let cell = Arc::new(ValueCell::new(info.clone(), self.clock()));
        let c2 = cell.clone();
        self.register_type(
            info,
            Arc::new(move |name, _reg| {
                // All instances of an app value share the one cell.
                let _ = name;
                Ok(c2.clone() as Arc<dyn Counter>)
            }),
            single_instance_discoverer(type_path),
        );
        cell
    }
}

impl std::fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterRegistry")
            .field("types", &self.types.read().len())
            .field("instances", &self.instances.read().len())
            .field("active", &self.active.lock().len())
            .finish()
    }
}

/// Discoverer advertising exactly the bare type path as the only instance.
fn single_instance_discoverer(type_path: &str) -> Option<CounterDiscoverer> {
    let name: Result<CounterName, _> = type_path.parse();
    match name {
        Ok(n) => Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| f(n.clone()))),
        Err(_) => None,
    }
}

/// Whether concrete name `c` is matched by wildcard pattern `p`.
/// Object and counter must be equal; instance parts match per-component,
/// `#*` matching any concrete index.
fn wildcard_matches(p: &CounterName, c: &CounterName) -> bool {
    if p.object != c.object || p.counter != c.counter {
        return false;
    }
    let (pi, ci) = match (&p.instance, &c.instance) {
        (Some(pi), Some(ci)) => (pi, ci),
        (None, None) => return true,
        _ => return false,
    };
    if pi.children.len() != ci.children.len() {
        return false;
    }
    let part_matches = |pp: &crate::name::InstancePart, cp: &crate::name::InstancePart| -> bool {
        if pp.name != cp.name {
            return false;
        }
        match (&pp.index, &cp.index) {
            (Some(InstanceIndex::All), Some(InstanceIndex::At(_))) => true,
            (a, b) => a == b,
        }
    };
    part_matches(&pi.parent, &ci.parent)
        && pi
            .children
            .iter()
            .zip(&ci.children)
            .all(|(a, b)| part_matches(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::CounterInstance;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn register_and_evaluate_raw() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(3));
        let v2 = v.clone();
        reg.register_raw(
            "/test/value",
            "a test value",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        assert_eq!(reg.evaluate("/test/value", false).unwrap().value, 3);
        v.store(8, Ordering::Relaxed);
        assert_eq!(reg.evaluate("/test/value", false).unwrap().value, 8);
    }

    #[test]
    fn unknown_type_is_an_error() {
        let reg = CounterRegistry::new();
        let e = reg.evaluate("/no/such", false).unwrap_err();
        assert!(matches!(e, CounterError::UnknownCounterType(_)));
    }

    #[test]
    fn instances_are_cached() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let n: CounterName = "/test/value".parse().unwrap();
        let a = reg.get_counter(&n).unwrap();
        let b = reg.get_counter(&n).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.instance_count(), 1);
    }

    #[test]
    fn wildcard_rejected_without_expand() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let n: CounterName = "/test{locality#0/worker-thread#*}/value".parse().unwrap();
        assert!(reg.get_counter(&n).is_err());
    }

    #[test]
    fn wildcard_expansion_uses_discoverer() {
        let reg = CounterRegistry::new();
        let info = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
        let clock = reg.clock();
        reg.register_type(
            info.clone(),
            Arc::new(move |name, _| {
                let mut i = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
                i.name = name.canonical();
                // Value = worker index, to check instance routing.
                let idx = match &name.instance {
                    Some(inst) => match inst.children.first().and_then(|c| c.index.as_ref()) {
                        Some(InstanceIndex::At(i)) => *i as i64,
                        _ => -1,
                    },
                    None => -1,
                };
                Ok(
                    Arc::new(RawCounter::new(i, clock.clone(), Arc::new(move || idx)))
                        as Arc<dyn Counter>,
                )
            }),
            Some(Arc::new(|f: &mut dyn FnMut(CounterName)| {
                for w in 0..4 {
                    f(CounterName::new("threads", "count")
                        .with_instance(CounterInstance::worker(0, w)));
                }
                f(CounterName::new("threads", "count").with_instance(CounterInstance::total(0)));
            })),
        );

        let resolved = reg
            .get_counters("/threads{locality#0/worker-thread#*}/count")
            .unwrap();
        assert_eq!(resolved.len(), 4);
        let values: Vec<i64> = resolved
            .iter()
            .map(|(_, c)| c.get_value(false).value)
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn expansion_error_when_nothing_matches() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        // The single-instance discoverer advertises only the bare path, so
        // a worker wildcard matches nothing.
        let err = match reg.get_counters("/test{locality#0/worker-thread#*}/value") {
            Ok(_) => panic!("expected wildcard expansion to fail"),
            Err(e) => e,
        };
        assert!(matches!(err, CounterError::UnknownInstance(_)));
    }

    #[test]
    fn active_set_protocol() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_monotonic(
            "/test/mono",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        assert_eq!(reg.add_active("/test/mono").unwrap(), 1);
        // Duplicate adds are ignored.
        assert_eq!(reg.add_active("/test/mono").unwrap(), 0);
        assert_eq!(reg.active_names(), vec!["/test/mono".to_string()]);

        v.store(5, Ordering::Relaxed);
        let vals = reg.evaluate_active_counters(true);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].1.value, 5);

        v.store(7, Ordering::Relaxed);
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals[0].1.value, 2, "evaluate(reset) must rebaseline");

        reg.reset_active_counters();
        let vals = reg.evaluate_active_counters(false);
        assert_eq!(vals[0].1.value, 0);

        assert!(reg.remove_active("/test/mono"));
        assert!(!reg.remove_active("/test/mono"));
        assert!(reg.evaluate_active_counters(false).is_empty());
    }

    #[test]
    fn value_cell_round_trip() {
        let reg = CounterRegistry::new();
        let cell = reg.register_value("/app/progress", "app progress", "%");
        cell.set(42);
        assert_eq!(reg.evaluate("/app/progress", false).unwrap().value, 42);
    }

    #[test]
    fn counter_types_lists_builtins_and_registered() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let types = reg.counter_types();
        let names: Vec<&str> = types.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"/test/value"));
        assert!(names.contains(&"/arithmetics/add"));
        assert!(names.contains(&"/statistics/average"));
    }

    #[test]
    fn unregister_removes_type_and_instances() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "h", "1", Arc::new(|| 1));
        let _ = reg.evaluate("/test/value", false).unwrap();
        assert_eq!(reg.instance_count(), 1);
        reg.unregister_type("/test/value");
        assert!(reg.evaluate("/test/value", false).is_err());
        assert_eq!(reg.instance_count(), 0);
    }

    #[test]
    fn type_info_round_trip() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/value", "the help", "µs", Arc::new(|| 1));
        let info = reg.type_info("/test/value").unwrap();
        assert_eq!(info.help, "the help");
        assert_eq!(info.unit, "µs");
        assert!(reg.type_info("/nope/x").is_none());
    }
}
