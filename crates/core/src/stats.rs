//! Statistical accumulators used by average and statistics counters.
//!
//! All accumulators are plain (non-atomic) types; thread-safe use goes
//! through the lock-free pairs in [`crate::counter`] or an external lock.

/// Incremental mean/variance/extrema accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample in.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Drop all state.
    pub fn reset(&mut self) {
        *self = RunningStats::new();
    }
}

/// Fixed-capacity sliding window for rolling statistics and medians.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    samples: Vec<f64>,
    capacity: usize,
    next: usize,
    filled: bool,
}

impl SampleWindow {
    /// A window holding up to `capacity` most recent samples (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SampleWindow {
            samples: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            filled: false,
        }
    }

    /// Push a sample, evicting the oldest once full.
    pub fn push(&mut self, x: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(x);
            if self.samples.len() == self.capacity {
                self.filled = true;
            }
        } else {
            self.samples[self.next] = x;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window has reached capacity at least once.
    pub fn is_full(&self) -> bool {
        self.filled
    }

    /// Mean over the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Median over the window (0 when empty); average of the two middle
    /// values for even-sized windows.
    pub fn median(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    /// Minimum over the window (0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum over the window (0 when empty).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation over the window.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// Drop all samples.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.next = 0;
        self.filled = false;
    }
}

/// Median of a slice (consumes and sorts a copy); 0 for an empty slice.
pub fn median_of(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn running_stats_reset_clears() {
        let mut s = RunningStats::new();
        s.add(10.0);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = SampleWindow::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        // window now holds {4, 2, 3}
        assert_eq!(w.len(), 3);
        assert!(w.is_full());
        assert!((w.mean() - 3.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 4.0);
        assert_eq!(w.median(), 3.0);
    }

    #[test]
    fn window_median_even() {
        let mut w = SampleWindow::new(4);
        for x in [1.0, 2.0, 3.0, 10.0] {
            w.push(x);
        }
        assert!((w.median() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn window_empty_statistics_are_zero() {
        let w = SampleWindow::new(5);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.median(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
        assert_eq!(w.stddev(), 0.0);
    }

    #[test]
    fn window_capacity_minimum_one() {
        let mut w = SampleWindow::new(0);
        w.push(1.0);
        w.push(2.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.mean(), 2.0);
    }

    #[test]
    fn median_of_slice() {
        assert_eq!(median_of(&[]), 0.0);
        assert_eq!(median_of(&[5.0]), 5.0);
        assert_eq!(median_of(&[2.0, 1.0, 3.0]), 2.0);
        assert_eq!(median_of(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn window_reset_clears_fill_state() {
        let mut w = SampleWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        assert!(w.is_full());
        w.reset();
        assert!(w.is_empty());
        assert!(!w.is_full());
    }
}
