//! Handle-cached counter queries.
//!
//! A [`ResolvedQuery`] resolves a set of counter specs (wildcards allowed)
//! into concrete `Arc<dyn Counter>` handles *once*, stamps the result with
//! the registry's topology [generation](CounterRegistry::generation), and
//! re-resolves only when that generation moves — not on every use. This is
//! the query-side twin of the registry's active-set snapshot: consumers
//! like the [`Sampler`](crate::sampler::Sampler) evaluate cached handles
//! with no registry lock held and no per-tick name resolution, yet still
//! observe topology changes (a respawned worker, a late-registered type)
//! within one generation.

use std::sync::Arc;

use crate::counter::Counter;
use crate::error::CounterError;
use crate::name::CounterName;
use crate::registry::CounterRegistry;
use crate::value::CounterValue;

/// One resolved counter: its concrete name (canonical form cached) and the
/// live handle.
pub struct QueryHandle {
    /// Concrete (wildcard-free) counter name.
    pub name: CounterName,
    /// `name.canonical()`, cached because consumers key state off it.
    pub canonical: String,
    /// The resolved counter instance.
    pub counter: Arc<dyn Counter>,
}

/// A set of counter specs resolved against a registry, cached per topology
/// generation.
pub struct ResolvedQuery {
    registry: Arc<CounterRegistry>,
    specs: Vec<CounterName>,
    generation: u64,
    handles: Vec<QueryHandle>,
}

impl ResolvedQuery {
    /// Parse and resolve `specs` eagerly. Unknown types, unparseable names
    /// and wildcards matching nothing are errors *now*; afterwards the
    /// query is live and failures during re-expansion merely drop the
    /// affected entries until the topology provides them again.
    pub fn resolve(
        registry: &Arc<CounterRegistry>,
        specs: &[String],
    ) -> Result<Self, CounterError> {
        let mut parsed = Vec::with_capacity(specs.len());
        for spec in specs {
            parsed.push(spec.parse::<CounterName>()?);
        }
        let mut query = ResolvedQuery {
            registry: registry.clone(),
            specs: parsed,
            generation: 0,
            handles: Vec::new(),
        };
        // Eager validation: surface resolution errors to the caller once.
        query.generation = registry.generation();
        query.handles = query.expand(true)?;
        Ok(query)
    }

    /// Re-resolve if the registry topology moved since the handles were
    /// cached. Returns `true` when the set of resolved names changed (not
    /// merely the generation stamp) so consumers can re-key per-counter
    /// state or re-emit schema headers.
    pub fn refresh(&mut self) -> bool {
        let generation = self.registry.generation();
        if generation == self.generation {
            return false;
        }
        // Stamp first: a concurrent bump re-triggers refresh next time.
        self.generation = generation;
        let fresh = match self.expand(false) {
            Ok(h) => h,
            Err(_) => return false,
        };
        let changed = fresh.len() != self.handles.len()
            || fresh
                .iter()
                .zip(&self.handles)
                .any(|(a, b)| a.canonical != b.canonical);
        self.handles = fresh;
        changed
    }

    fn expand(&self, strict: bool) -> Result<Vec<QueryHandle>, CounterError> {
        let mut out = Vec::new();
        for spec in &self.specs {
            let names = match self.registry.expand(spec) {
                Ok(n) => n,
                Err(e) if strict => return Err(e),
                Err(_) => continue,
            };
            for name in names {
                match self.registry.get_counter(&name) {
                    Ok(counter) => {
                        let canonical = name.canonical();
                        out.push(QueryHandle {
                            name,
                            canonical,
                            counter,
                        });
                    }
                    Err(e) if strict => return Err(e),
                    Err(_) => {}
                }
            }
        }
        Ok(out)
    }

    /// The resolved handles, in spec order then expansion order.
    pub fn handles(&self) -> &[QueryHandle] {
        &self.handles
    }

    /// Canonical names of the resolved counters, in handle order.
    pub fn names(&self) -> Vec<String> {
        self.handles.iter().map(|h| h.canonical.clone()).collect()
    }

    /// The topology generation the handles were resolved against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The registry this query resolves against.
    pub fn registry(&self) -> &Arc<CounterRegistry> {
        &self.registry
    }

    /// Evaluate every handle with no registry lock held and fold the
    /// batch's wall time into the registry's overhead counters. Intended
    /// for one-shot consumers; the sampler keeps per-counter resilience
    /// state and drives the handles itself.
    pub fn evaluate(&self, reset: bool) -> Vec<(String, CounterValue)> {
        let clock = self.registry.clock();
        let t0 = clock.now_ns();
        let out: Vec<(String, CounterValue)> = self
            .handles
            .iter()
            .map(|h| (h.canonical.clone(), h.counter.get_value(reset)))
            .collect();
        self.registry
            .record_query_overhead(clock.now_ns().saturating_sub(t0), 1);
        out
    }
}

impl std::fmt::Debug for ResolvedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedQuery")
            .field("specs", &self.specs.len())
            .field("handles", &self.handles.len())
            .field("generation", &self.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::CounterInstance;
    use crate::value::{CounterInfo, CounterKind};
    use std::sync::atomic::{AtomicI64, Ordering};

    fn register_workers(reg: &Arc<CounterRegistry>, count: Arc<AtomicI64>) {
        let info = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
        let clock = reg.clock();
        reg.register_type(
            info,
            Arc::new(move |name, _| {
                let mut i = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
                i.name = name.canonical();
                Ok(Arc::new(crate::counter::RawCounter::new(
                    i,
                    clock.clone(),
                    Arc::new(|| 1),
                )) as Arc<dyn Counter>)
            }),
            Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| {
                for w in 0..count.load(Ordering::Relaxed) {
                    f(CounterName::new("threads", "count")
                        .with_instance(CounterInstance::worker(0, w as u32)));
                }
            })),
        );
    }

    #[test]
    fn resolve_is_eager_and_cached() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/v", "h", "1", Arc::new(|| 7));
        let q = ResolvedQuery::resolve(&reg, &["/test/v".into()]).unwrap();
        assert_eq!(q.names(), vec!["/test/v".to_string()]);
        assert!(ResolvedQuery::resolve(&reg, &["/none/x".into()]).is_err());
    }

    #[test]
    fn refresh_is_a_noop_within_a_generation() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/v", "h", "1", Arc::new(|| 7));
        let mut q = ResolvedQuery::resolve(&reg, &["/test/v".into()]).unwrap();
        let g = q.generation();
        assert!(!q.refresh());
        assert_eq!(q.generation(), g);
    }

    #[test]
    fn refresh_tracks_topology_growth() {
        let reg = CounterRegistry::new();
        let workers = Arc::new(AtomicI64::new(2));
        register_workers(&reg, workers.clone());
        let mut q =
            ResolvedQuery::resolve(&reg, &["/threads{locality#0/worker-thread#*}/count".into()])
                .unwrap();
        assert_eq!(q.handles().len(), 2);

        workers.store(4, Ordering::Relaxed);
        reg.bump_generation();
        assert!(q.refresh(), "grown topology must change the name set");
        assert_eq!(q.handles().len(), 4);

        // A bump without a topology change refreshes but reports no change.
        reg.bump_generation();
        assert!(!q.refresh());
    }

    #[test]
    fn evaluate_records_overhead() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/v", "h", "1", Arc::new(|| 7));
        let q = ResolvedQuery::resolve(&reg, &["/test/v".into()]).unwrap();
        for _ in 0..32 {
            let vals = q.evaluate(false);
            assert_eq!(vals[0].1.value, 7);
        }
        let batches = reg
            .evaluate("/counters{locality#0/total}/overhead/count", false)
            .unwrap();
        assert!(batches.value >= 32);
    }
}
