//! Arithmetic (derived) counters: `/arithmetics/{add,subtract,multiply,divide}`.
//!
//! The parameter string names the child counters, e.g. the paper's
//! per-task average recomputed from cumulatives:
//!
//! ```text
//! /arithmetics/divide@/threads{locality#0/total}/time/cumulative,/threads{locality#0/total}/count/cumulative
//! ```
//!
//! Evaluating an arithmetic counter evaluates its children *without*
//! resetting them (several derived counters may share a child); `reset` on
//! the derived counter resets the children.

use std::sync::Arc;

use crate::counter::Counter;
use crate::error::CounterError;
use crate::name::CounterName;
use crate::registry::CounterRegistry;
use crate::value::{CounterInfo, CounterKind, CounterStatus, CounterValue};

/// Split a parameter string into child specifications.
///
/// Children are comma-separated, but a child's own parameters may contain
/// commas; a new child starts only at a segment beginning with `/`. Trailing
/// non-`/` segments attach to the preceding child — except that callers that
/// expect scalar tail arguments (the statistics counters) strip them first
/// with [`split_tail_args`].
pub(crate) fn split_children(params: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for seg in params.split(',') {
        if seg.starts_with('/') || out.is_empty() {
            out.push(seg.to_owned());
        } else {
            let last = out.last_mut().expect("out is non-empty in this branch");
            last.push(',');
            last.push_str(seg);
        }
    }
    out.retain(|s| !s.is_empty());
    out
}

/// Split up to `max_tail` trailing purely-numeric comma segments off a
/// parameter string. Returns (head, numeric tail segments in order).
/// Bounding the tail keeps nested counter parameters unambiguous:
/// `/statistics/max@/statistics/rolling_average@/x,2,5` gives the outer
/// counter the `5` and leaves `...@/x,2` for the inner one.
pub(crate) fn split_tail_args(params: &str, max_tail: usize) -> (String, Vec<f64>) {
    let mut segs: Vec<&str> = params.split(',').collect();
    let mut tail = Vec::new();
    while segs.len() > 1 && tail.len() < max_tail {
        let last = segs[segs.len() - 1].trim();
        match last.parse::<f64>() {
            Ok(v) => {
                tail.push(v);
                segs.pop();
            }
            Err(_) => break,
        }
    }
    tail.reverse();
    (segs.join(","), tail)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Add,
    Subtract,
    Multiply,
    Divide,
    Mean,
    Min,
    Max,
}

impl Op {
    const ALL: [(&'static str, Op); 7] = [
        ("add", Op::Add),
        ("subtract", Op::Subtract),
        ("multiply", Op::Multiply),
        ("divide", Op::Divide),
        ("mean", Op::Mean),
        ("min", Op::Min),
        ("max", Op::Max),
    ];

    fn from_counter(counter: &str) -> Option<Op> {
        Self::ALL
            .iter()
            .find(|(n, _)| *n == counter)
            .map(|(_, o)| *o)
    }

    fn apply(self, values: &[f64]) -> f64 {
        let mut it = values.iter().copied();
        let first = it.next().unwrap_or(0.0);
        match self {
            Op::Add => first + it.sum::<f64>(),
            Op::Subtract => it.fold(first, |a, b| a - b),
            Op::Multiply => it.fold(first, |a, b| a * b),
            Op::Divide => it.fold(first, |a, b| if b == 0.0 { 0.0 } else { a / b }),
            Op::Mean => (first + it.sum::<f64>()) / values.len().max(1) as f64,
            Op::Min => it.fold(first, f64::min),
            Op::Max => it.fold(first, f64::max),
        }
    }
}

struct ArithmeticCounter {
    info: CounterInfo,
    op: Op,
    children: Vec<Arc<dyn Counter>>,
}

impl Counter for ArithmeticCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, _reset: bool) -> CounterValue {
        let mut values = Vec::with_capacity(self.children.len());
        let mut ts = 0;
        for c in &self.children {
            let v = c.get_value(false);
            ts = ts.max(v.timestamp_ns);
            if !v.status.is_ok() {
                return CounterValue {
                    status: CounterStatus::Invalid,
                    ..CounterValue::empty(ts)
                };
            }
            values.push(v.scaled());
        }
        let result = self.op.apply(&values);
        CounterValue::new(result.round() as i64, ts).with_count(values.len() as u64)
    }

    fn reset(&self) {
        for c in &self.children {
            c.reset();
        }
    }
}

/// Register `/arithmetics/{add,subtract,multiply,divide}` with `registry`.
/// Called automatically by [`CounterRegistry::new`].
pub fn register_arithmetics(registry: &Arc<CounterRegistry>) {
    for (op_name, _) in Op::ALL {
        let type_path = format!("/arithmetics/{op_name}");
        let info = CounterInfo::new(
            &type_path,
            CounterKind::Raw,
            format!("{op_name} the scaled values of the child counters named in the parameters"),
            "1",
        );
        registry.register_type(
            info,
            Arc::new(move |name: &CounterName, reg: &Arc<CounterRegistry>| {
                let op = Op::from_counter(&name.counter).ok_or_else(|| {
                    CounterError::InvalidParameters(format!("unknown operation `{}`", name.counter))
                })?;
                let params = name.parameters.as_deref().ok_or_else(|| {
                    CounterError::InvalidParameters(
                        "arithmetic counters need child counters as parameters".into(),
                    )
                })?;
                let child_names = split_children(params);
                if child_names.len() < 2 {
                    return Err(CounterError::InvalidParameters(format!(
                        "arithmetic counters need at least two children, got `{params}`"
                    )));
                }
                let mut children = Vec::with_capacity(child_names.len());
                for cn in &child_names {
                    let parsed: CounterName = cn.parse()?;
                    for concrete in reg.expand(&parsed)? {
                        children.push(reg.get_counter(&concrete)?);
                    }
                }
                let info = CounterInfo::new(
                    name.canonical(),
                    CounterKind::Raw,
                    "derived arithmetic counter",
                    "1",
                );
                Ok(Arc::new(ArithmeticCounter { info, op, children }) as Arc<dyn Counter>)
            }),
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn reg_with_values(vals: &[(&str, i64)]) -> Arc<CounterRegistry> {
        let reg = CounterRegistry::new();
        for (path, v) in vals {
            let v = *v;
            reg.register_raw(path, "h", "1", Arc::new(move || v));
        }
        reg
    }

    #[test]
    fn split_children_plain() {
        assert_eq!(split_children("/a/b,/c/d"), vec!["/a/b", "/c/d"]);
    }

    #[test]
    fn split_children_nested_params() {
        assert_eq!(
            split_children("/statistics/average@/a/b,50,/c/d"),
            vec!["/statistics/average@/a/b,50", "/c/d"]
        );
    }

    #[test]
    fn split_tail_args_strips_numbers() {
        let (head, tail) = split_tail_args("/a/b,100", 1);
        assert_eq!(head, "/a/b");
        assert_eq!(tail, vec![100.0]);
        let (head, tail) = split_tail_args("/a/b@x,1,2.5", 2);
        assert_eq!(head, "/a/b@x");
        assert_eq!(tail, vec![1.0, 2.5]);
        let (head, tail) = split_tail_args("/a/b", 3);
        assert_eq!(head, "/a/b");
        assert!(tail.is_empty());
        // The bound keeps inner parameters attached to the head.
        let (head, tail) = split_tail_args("/s/r@/x,2,5", 1);
        assert_eq!(head, "/s/r@/x,2");
        assert_eq!(tail, vec![5.0]);
    }

    #[test]
    fn add_subtract_multiply_divide() {
        let reg = reg_with_values(&[("/x/a", 10), ("/x/b", 4)]);
        for (op, expect) in [
            ("add", 14),
            ("subtract", 6),
            ("multiply", 40),
            ("divide", 3),
        ] {
            let name = format!("/arithmetics/{op}@/x/a,/x/b");
            let v = reg.evaluate(&name, false).unwrap();
            assert_eq!(v.value, expect, "op={op}");
        }
    }

    #[test]
    fn divide_by_zero_yields_zero() {
        let reg = reg_with_values(&[("/x/a", 10), ("/x/zero", 0)]);
        let v = reg
            .evaluate("/arithmetics/divide@/x/a,/x/zero", false)
            .unwrap();
        assert_eq!(v.value, 0);
    }

    #[test]
    fn mean_min_max_over_children() {
        // The cross-worker aggregations HPX exposes as arithmetics/mean etc.
        let reg = reg_with_values(&[("/x/a", 10), ("/x/b", 4), ("/x/c", 7)]);
        for (op, expect) in [("mean", 7), ("min", 4), ("max", 10)] {
            let name = format!("/arithmetics/{op}@/x/a,/x/b,/x/c");
            assert_eq!(reg.evaluate(&name, false).unwrap().value, expect, "op={op}");
        }
    }

    #[test]
    fn three_way_add() {
        let reg = reg_with_values(&[("/x/a", 1), ("/x/b", 2), ("/x/c", 3)]);
        let v = reg
            .evaluate("/arithmetics/add@/x/a,/x/b,/x/c", false)
            .unwrap();
        assert_eq!(v.value, 6);
    }

    #[test]
    fn missing_parameters_is_an_error() {
        let reg = CounterRegistry::new();
        assert!(matches!(
            reg.evaluate("/arithmetics/add", false),
            Err(CounterError::InvalidParameters(_))
        ));
    }

    #[test]
    fn one_child_is_an_error() {
        let reg = reg_with_values(&[("/x/a", 1)]);
        assert!(reg.evaluate("/arithmetics/add@/x/a", false).is_err());
    }

    #[test]
    fn unknown_child_propagates_error() {
        let reg = CounterRegistry::new();
        assert!(matches!(
            reg.evaluate("/arithmetics/add@/no/a,/no/b", false),
            Err(CounterError::UnknownCounterType(_))
        ));
    }

    #[test]
    fn reset_propagates_to_children() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_monotonic(
            "/x/m",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        reg.register_raw("/x/one", "h", "1", Arc::new(|| 1));
        let name: CounterName = "/arithmetics/add@/x/m,/x/one".parse().unwrap();
        let c = reg.get_counter(&name).unwrap();
        v.store(10, Ordering::Relaxed);
        assert_eq!(c.get_value(false).value, 11);
        c.reset();
        assert_eq!(c.get_value(false).value, 1, "monotonic child rebaselined");
    }

    #[test]
    fn paper_task_duration_from_cumulatives() {
        // /threads/time/average == cumulative time / cumulative count,
        // recomputed through an arithmetic counter.
        let reg = reg_with_values(&[
            ("/threads/time/cumulative", 120_000),
            ("/threads/count/cumulative", 60),
        ]);
        let v = reg
            .evaluate(
                "/arithmetics/divide@/threads/time/cumulative,/threads/count/cumulative",
                false,
            )
            .unwrap();
        assert_eq!(v.value, 2000);
    }
}
