//! Interval-driven counter sampling, mirroring HPX's
//! `--hpx:print-counter` / `--hpx:print-counter-interval` convenience
//! layer: a background thread evaluates a set of counters periodically and
//! hands each batch of readings to a sink (stdout, CSV, JSON, or custom).

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::counter::Counter;
use crate::error::CounterError;
use crate::name::CounterName;
use crate::registry::CounterRegistry;
use crate::value::CounterValue;

/// One batch of readings taken at the same sampling point.
#[derive(Debug, Clone)]
pub struct SampleBatch {
    /// Sequence number of the batch (0-based).
    pub sequence: u64,
    /// Registry-clock timestamp (ns) when the batch was started.
    pub timestamp_ns: u64,
    /// (counter name, value) pairs in configuration order.
    pub readings: Vec<(String, CounterValue)>,
}

/// Consumer of sample batches.
pub trait SampleSink: Send {
    /// Called once before the first batch with the counter names.
    fn begin(&mut self, names: &[String]) {
        let _ = names;
    }
    /// Called for every batch.
    fn record(&mut self, batch: &SampleBatch);
    /// Called when sampling stops.
    fn finish(&mut self) {}
}

/// Sink writing one CSV row per batch: `sequence,timestamp_ns,<value...>`.
pub struct CsvSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> CsvSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        CsvSink { out }
    }
}

impl<W: Write + Send> SampleSink for CsvSink<W> {
    fn begin(&mut self, names: &[String]) {
        let _ = write!(self.out, "sequence,timestamp_ns");
        for n in names {
            let _ = write!(self.out, ",{n}");
        }
        let _ = writeln!(self.out);
    }

    fn record(&mut self, batch: &SampleBatch) {
        let _ = write!(self.out, "{},{}", batch.sequence, batch.timestamp_ns);
        for (_, v) in &batch.readings {
            if v.status.is_ok() {
                let _ = write!(self.out, ",{}", v.scaled());
            } else {
                let _ = write!(self.out, ",");
            }
        }
        let _ = writeln!(self.out);
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Sink writing one JSON object per line (JSONL) per batch.
pub struct JsonSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonSink { out }
    }
}

impl<W: Write + Send> SampleSink for JsonSink<W> {
    fn record(&mut self, batch: &SampleBatch) {
        #[derive(serde::Serialize)]
        struct Row<'a> {
            sequence: u64,
            timestamp_ns: u64,
            readings: Vec<(&'a str, &'a CounterValue)>,
        }
        let row = Row {
            sequence: batch.sequence,
            timestamp_ns: batch.timestamp_ns,
            readings: batch.readings.iter().map(|(n, v)| (n.as_str(), v)).collect(),
        };
        if let Ok(s) = serde_json::to_string(&row) {
            let _ = writeln!(self.out, "{s}");
        }
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Sink collecting batches in memory (for tests and harnesses).
#[derive(Default)]
pub struct MemorySink {
    batches: Arc<Mutex<Vec<SampleBatch>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Shared handle to the collected batches.
    pub fn batches(&self) -> Arc<Mutex<Vec<SampleBatch>>> {
        self.batches.clone()
    }
}

impl SampleSink for MemorySink {
    fn record(&mut self, batch: &SampleBatch) {
        self.batches.lock().push(batch.clone());
    }
}

/// Configuration of a sampling run.
pub struct SamplerConfig {
    /// Counter names (wildcards allowed) to sample.
    pub counters: Vec<String>,
    /// Sampling period.
    pub interval: Duration,
    /// Whether each read resets the counters (per-interval deltas).
    pub reset_on_read: bool,
}

impl SamplerConfig {
    /// Sample `counters` every `interval` without resetting.
    pub fn new(counters: Vec<String>, interval: Duration) -> Self {
        SamplerConfig { counters, interval, reset_on_read: false }
    }
}

/// A running background sampler; dropping it stops sampling.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Resolve the configured names and start the sampling thread.
    pub fn start(
        registry: &Arc<CounterRegistry>,
        config: SamplerConfig,
        mut sink: Box<dyn SampleSink>,
    ) -> Result<Self, CounterError> {
        let mut resolved: Vec<(CounterName, Arc<dyn Counter>)> = Vec::new();
        for spec in &config.counters {
            resolved.extend(registry.get_counters(spec)?);
        }
        let names: Vec<String> = resolved.iter().map(|(n, _)| n.canonical()).collect();
        let clock = registry.clock();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("rpx-counter-sampler".into())
            .spawn(move || {
                sink.begin(&names);
                let mut sequence = 0;
                while !stop2.load(Ordering::Acquire) {
                    let timestamp_ns = clock.now_ns();
                    let readings = resolved
                        .iter()
                        .map(|(n, c)| (n.canonical(), c.get_value(config.reset_on_read)))
                        .collect();
                    sink.record(&SampleBatch { sequence, timestamp_ns, readings });
                    sequence += 1;
                    // Sleep in short slices so stop() is prompt.
                    let mut remaining = config.interval;
                    let slice = Duration::from_millis(5);
                    while remaining > Duration::ZERO && !stop2.load(Ordering::Acquire) {
                        let d = remaining.min(slice);
                        std::thread::sleep(d);
                        remaining = remaining.saturating_sub(d);
                    }
                }
                sink.finish();
            })
            .expect("failed to spawn sampler thread");
        Ok(Sampler { stop, handle: Some(handle) })
    }

    /// Stop sampling and wait for the thread to flush its sink.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn sampler_collects_batches() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(1));
        let v2 = v.clone();
        reg.register_raw("/test/v", "h", "1", Arc::new(move || v2.load(Ordering::Relaxed)));

        let sink = MemorySink::new();
        let batches = sink.batches();
        let sampler = Sampler::start(
            &reg,
            SamplerConfig::new(vec!["/test/v".into()], Duration::from_millis(5)),
            Box::new(sink),
        )
        .unwrap();

        while batches.lock().len() < 3 {
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();

        let collected = batches.lock();
        assert!(collected.len() >= 3);
        assert_eq!(collected[0].readings.len(), 1);
        assert_eq!(collected[0].readings[0].0, "/test/v");
        assert_eq!(collected[0].readings[0].1.value, 1);
        // Sequence numbers are consecutive, timestamps monotone.
        for w in collected.windows(2) {
            assert_eq!(w[1].sequence, w[0].sequence + 1);
            assert!(w[1].timestamp_ns >= w[0].timestamp_ns);
        }
    }

    #[test]
    fn sampler_reset_on_read_yields_deltas() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_monotonic("/test/m", "h", "1", Arc::new(move || v2.load(Ordering::Relaxed)));

        let sink = MemorySink::new();
        let batches = sink.batches();
        let mut config = SamplerConfig::new(vec!["/test/m".into()], Duration::from_millis(5));
        config.reset_on_read = true;
        let sampler = Sampler::start(&reg, config, Box::new(sink)).unwrap();

        for _ in 0..5 {
            v.fetch_add(10, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(6));
        }
        sampler.stop();

        let collected = batches.lock();
        let sampled: i64 = collected.iter().map(|b| b.readings[0].1.value).sum();
        // Whatever the sampler did not yet see is still pending in the
        // counter; sampled deltas plus the remainder must equal the total
        // increment exactly (no double counting, no loss).
        let remainder = reg.evaluate("/test/m", false).unwrap().value;
        assert_eq!(sampled + remainder, v.load(Ordering::Relaxed));
        assert!(sampled > 0, "sampler should have observed some increments");
    }

    #[test]
    fn sampler_unknown_counter_errors_eagerly() {
        let reg = CounterRegistry::new();
        let result = Sampler::start(
            &reg,
            SamplerConfig::new(vec!["/none/x".into()], Duration::from_millis(5)),
            Box::new(MemorySink::new()),
        );
        assert!(result.is_err());
    }

    #[test]
    fn csv_sink_formats_rows() {
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf);
            sink.begin(&["/a/b".into()]);
            sink.record(&SampleBatch {
                sequence: 0,
                timestamp_ns: 123,
                readings: vec![("/a/b".into(), CounterValue::new(7, 123))],
            });
            sink.finish();
        }
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().next().unwrap(), "sequence,timestamp_ns,/a/b");
        assert_eq!(s.lines().nth(1).unwrap(), "0,123,7");
    }

    #[test]
    fn json_sink_emits_parseable_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonSink::new(&mut buf);
            sink.record(&SampleBatch {
                sequence: 1,
                timestamp_ns: 9,
                readings: vec![("/a/b".into(), CounterValue::new(3, 9))],
            });
            sink.finish();
        }
        let s = String::from_utf8(buf).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(s.trim()).unwrap();
        assert_eq!(parsed["sequence"], 1);
        assert_eq!(parsed["readings"][0][0], "/a/b");
    }
}
