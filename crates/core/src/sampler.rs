//! Interval-driven counter sampling, mirroring HPX's
//! `--hpx:print-counter` / `--hpx:print-counter-interval` convenience
//! layer: a background thread evaluates a set of counters periodically and
//! hands each batch of readings to a sink (stdout, CSV, JSON, or custom).
//!
//! Sampling is *resilient*: a counter whose evaluation returns a non-ok
//! status — or panics — does not kill the run. The failure is recorded in
//! [`SamplerHealth`], the reading is emitted as an unavailable placeholder
//! (an empty CSV cell; rows keep their full width), the remaining counters
//! are still sampled, and the failing counter is backed off exponentially
//! (with jitter, capped at 32 intervals) so a persistently broken counter
//! cannot dominate the sampling budget.
//!
//! Sampling is also *live*: names are resolved into counter handles once
//! per topology [generation](CounterRegistry::generation) via
//! [`ResolvedQuery`], not once per tick and not once per run. When the
//! topology moves (a worker respawned, a type registered late), the next
//! tick re-expands any wildcard specs, re-announces the schema to the sink,
//! and keeps sampling — per-counter backoff state survives for counters
//! present across the change.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::counter::Counter;
use crate::error::CounterError;
use crate::query::ResolvedQuery;
use crate::registry::CounterRegistry;
use crate::value::CounterValue;

/// One batch of readings taken at the same sampling point.
#[derive(Debug, Clone)]
pub struct SampleBatch {
    /// Sequence number of the batch (0-based).
    pub sequence: u64,
    /// Registry-clock timestamp (ns) when the batch was started.
    pub timestamp_ns: u64,
    /// (counter name, value) pairs in configuration order.
    pub readings: Vec<(String, CounterValue)>,
}

/// Consumer of sample batches.
pub trait SampleSink: Send {
    /// Called once before the first batch with the counter names.
    fn begin(&mut self, names: &[String]) {
        let _ = names;
    }
    /// Called for every batch.
    fn record(&mut self, batch: &SampleBatch);
    /// Called when sampling stops.
    fn finish(&mut self) {}
    /// Cumulative number of records this sink failed to deliver (write
    /// errors, capacity evictions, …). Sinks that can lose data MUST
    /// count every loss here — silent drops corrupt downstream rate
    /// computations invisibly. Mirrored into
    /// [`SamplerHealth::sink_dropped`] and the
    /// `/counters/sampler/dropped` counter by the sampling loop.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Sink writing one CSV row per batch: `sequence,timestamp_ns,<value...>`.
///
/// A row whose write fails (full disk, closed pipe) is counted in
/// [`dropped`](SampleSink::dropped) — once per row, however many of its
/// field writes failed — instead of being silently swallowed.
pub struct CsvSink<W: Write + Send> {
    out: W,
    dropped: u64,
}

impl<W: Write + Send> CsvSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        CsvSink { out, dropped: 0 }
    }
}

/// RFC 4180 field escaping: a field containing a comma, quote or line
/// break is wrapped in double quotes with inner quotes doubled. Counter
/// names can contain commas (statistics window parameters) and arbitrary
/// parameter text, so the header must escape them or every subsequent
/// column shifts. Shared with the serve-layer CSV merge (`rpx-collect`).
pub fn csv_escape(field: &str) -> std::borrow::Cow<'_, str> {
    if field.contains([',', '"', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", field.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(field)
    }
}

impl<W: Write + Send> SampleSink for CsvSink<W> {
    fn begin(&mut self, names: &[String]) {
        let _ = write!(self.out, "sequence,timestamp_ns");
        for n in names {
            let _ = write!(self.out, ",{}", csv_escape(n));
        }
        let _ = writeln!(self.out);
    }

    fn record(&mut self, batch: &SampleBatch) {
        let mut ok = write!(self.out, "{},{}", batch.sequence, batch.timestamp_ns).is_ok();
        for (_, v) in &batch.readings {
            ok &= if v.status.is_ok() {
                write!(self.out, ",{}", v.scaled()).is_ok()
            } else {
                write!(self.out, ",").is_ok()
            };
        }
        ok &= writeln!(self.out).is_ok();
        if !ok {
            self.dropped += 1;
        }
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Sink writing one JSON object per line (JSONL) per batch. Rows lost to
/// serialization or write failure are counted in
/// [`dropped`](SampleSink::dropped).
pub struct JsonSink<W: Write + Send> {
    out: W,
    dropped: u64,
}

impl<W: Write + Send> JsonSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonSink { out, dropped: 0 }
    }
}

impl<W: Write + Send> SampleSink for JsonSink<W> {
    fn record(&mut self, batch: &SampleBatch) {
        #[derive(serde::Serialize)]
        struct Row<'a> {
            sequence: u64,
            timestamp_ns: u64,
            readings: Vec<(&'a str, &'a CounterValue)>,
        }
        let row = Row {
            sequence: batch.sequence,
            timestamp_ns: batch.timestamp_ns,
            readings: batch
                .readings
                .iter()
                .map(|(n, v)| (n.as_str(), v))
                .collect(),
        };
        let ok = match serde_json::to_string(&row) {
            Ok(s) => writeln!(self.out, "{s}").is_ok(),
            Err(_) => false,
        };
        if !ok {
            self.dropped += 1;
        }
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Sink collecting batches in memory (for tests and harnesses).
///
/// [`bounded`](Self::bounded) turns it into a fixed-capacity ring: the
/// newest batches are kept, each evicted oldest batch counts as exactly
/// one drop — the ring-buffer drop-accounting rule every lossy sink in
/// the pipeline follows (tracer ring, serve history ring).
#[derive(Default)]
pub struct MemorySink {
    batches: Arc<Mutex<Vec<SampleBatch>>>,
    /// `Some(cap)` bounds the buffer to the `cap` most recent batches.
    capacity: Option<usize>,
    dropped: Arc<AtomicU64>,
}

impl MemorySink {
    /// An empty in-memory sink with unbounded capacity.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// An empty in-memory sink keeping only the `capacity` most recent
    /// batches; evictions are counted exactly in [`dropped_handle`]
    /// (Self::dropped_handle).
    pub fn bounded(capacity: usize) -> Self {
        MemorySink {
            capacity: Some(capacity.max(1)),
            ..MemorySink::default()
        }
    }

    /// Shared handle to the collected batches.
    pub fn batches(&self) -> Arc<Mutex<Vec<SampleBatch>>> {
        self.batches.clone()
    }

    /// Shared handle to the eviction count (live; one per evicted batch).
    pub fn dropped_handle(&self) -> Arc<AtomicU64> {
        self.dropped.clone()
    }
}

impl SampleSink for MemorySink {
    fn record(&mut self, batch: &SampleBatch) {
        let mut batches = self.batches.lock();
        if let Some(cap) = self.capacity {
            while batches.len() >= cap {
                batches.remove(0);
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        batches.push(batch.clone());
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Configuration of a sampling run.
pub struct SamplerConfig {
    /// Counter names (wildcards allowed) to sample.
    pub counters: Vec<String>,
    /// Sampling period.
    pub interval: Duration,
    /// Whether each read resets the counters (per-interval deltas).
    pub reset_on_read: bool,
}

impl SamplerConfig {
    /// Sample `counters` every `interval` without resetting.
    pub fn new(counters: Vec<String>, interval: Duration) -> Self {
        SamplerConfig {
            counters,
            interval,
            reset_on_read: false,
        }
    }
}

/// Failure accounting of a sampling run, shared with the caller.
#[derive(Debug, Default)]
pub struct SamplerHealth {
    /// Counter evaluations that failed (panicked or returned a non-ok
    /// status) and were replaced by an unavailable placeholder.
    read_errors: AtomicU64,
    /// Times a repeatedly failing counter was put into (a longer) backoff.
    backoffs: AtomicU64,
    /// Records the sink reported dropped (mirror of
    /// [`SampleSink::dropped`], refreshed after every batch).
    sink_dropped: AtomicU64,
}

impl SamplerHealth {
    /// Failed counter evaluations so far.
    pub fn read_errors(&self) -> u64 {
        self.read_errors.load(Ordering::Relaxed)
    }

    /// Backoff episodes entered so far.
    pub fn backoffs(&self) -> u64 {
        self.backoffs.load(Ordering::Relaxed)
    }

    /// Records the sink failed to deliver so far (write errors, capacity
    /// evictions); also exported as `/counters/sampler/dropped`.
    pub fn sink_dropped(&self) -> u64 {
        self.sink_dropped.load(Ordering::Relaxed)
    }
}

/// Longest backoff, in sampling intervals, for a persistently failing
/// counter.
const MAX_BACKOFF_INTERVALS: u64 = 32;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A running background sampler; dropping it stops sampling.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    health: Arc<SamplerHealth>,
    flush: Arc<FlushShared>,
    handle: Option<JoinHandle<()>>,
}

/// Rendezvous between [`Sampler::flush_now`] callers and the sampling
/// thread: a request/completion sequence pair. `flush_now` bumps
/// `requests`; the loop reads `requests` *before* sampling a batch and
/// copies that value into `completed` *after* the batch reached the sink,
/// so `completed >= r` proves a complete batch was taken entirely after
/// request `r` was made.
#[derive(Default)]
struct FlushShared {
    requests: AtomicU64,
    completed: AtomicU64,
}

/// Per-counter resilience state inside the sampling loop.
#[derive(Default, Clone)]
struct ReadState {
    consecutive_failures: u32,
    /// Batches left to skip (emit a placeholder without evaluating).
    skip: u64,
}

impl Sampler {
    /// Resolve the configured names (eagerly — unknown counters are an
    /// error now) and start the sampling thread. The resolved handles are
    /// cached per topology generation: each tick evaluates them with no
    /// registry lock held, and only a generation bump triggers
    /// re-resolution (see [`ResolvedQuery`]).
    pub fn start(
        registry: &Arc<CounterRegistry>,
        config: SamplerConfig,
        mut sink: Box<dyn SampleSink>,
    ) -> Result<Self, CounterError> {
        let health = Arc::new(SamplerHealth::default());
        // Export the sink-drop mirror before resolving, so the sampler can
        // watch its own drops. Unregister first: re-registration replaces
        // the type entry but not a cached instance, and a fresh sampler
        // run must not report a predecessor's drops.
        registry.unregister_type("/counters/sampler/dropped");
        let h = health.clone();
        registry.register_monotonic(
            "/counters/sampler/dropped",
            "records the sampler sink failed to deliver (write errors, capacity evictions)",
            "1",
            Arc::new(move || h.sink_dropped() as i64),
        );
        let mut query = ResolvedQuery::resolve(registry, &config.counters)?;
        let clock = registry.clock();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let health2 = health.clone();
        let registry = registry.clone();
        let flush = Arc::new(FlushShared::default());
        let flush2 = flush.clone();
        let handle = std::thread::Builder::new()
            .name("rpx-counter-sampler".into())
            .spawn(move || {
                sink.begin(&query.names());
                let mut sequence: u64 = 0;
                // Resilience state keyed by canonical name so it survives
                // re-expansion for counters present across the change.
                let mut states: HashMap<String, ReadState> = HashMap::new();
                while !stop2.load(Ordering::Acquire) {
                    // Flush requests made before this point are satisfied
                    // by the batch this iteration records.
                    let flush_req = flush2.requests.load(Ordering::Acquire);
                    if query.refresh() {
                        // The resolved set changed: announce the new schema
                        // (CSV emits a fresh header row) and drop state for
                        // counters that left the set.
                        sink.begin(&query.names());
                        let names: std::collections::HashSet<String> =
                            query.names().into_iter().collect();
                        states.retain(|n, _| names.contains(n));
                    }
                    let timestamp_ns = clock.now_ns();
                    let readings: Vec<(String, CounterValue)> = query
                        .handles()
                        .iter()
                        .map(|h| {
                            let st = states.entry(h.canonical.clone()).or_default();
                            let v = sample_one(
                                &h.counter,
                                config.reset_on_read,
                                st,
                                &health2,
                                timestamp_ns,
                                sequence,
                            );
                            (h.canonical.clone(), v)
                        })
                        .collect();
                    registry.record_query_overhead(clock.now_ns().saturating_sub(timestamp_ns), 1);
                    sink.record(&SampleBatch {
                        sequence,
                        timestamp_ns,
                        readings,
                    });
                    health2
                        .sink_dropped
                        .store(sink.dropped(), Ordering::Relaxed);
                    sequence += 1;
                    flush2.completed.store(flush_req, Ordering::Release);
                    // Sleep in short slices so stop() and flush_now() are
                    // prompt: a flush request arriving mid-sleep cuts the
                    // interval short and starts the next batch immediately.
                    let mut remaining = config.interval;
                    let slice = Duration::from_millis(5);
                    while remaining > Duration::ZERO
                        && !stop2.load(Ordering::Acquire)
                        && flush2.requests.load(Ordering::Acquire) <= flush_req
                    {
                        let d = remaining.min(slice);
                        std::thread::sleep(d);
                        remaining = remaining.saturating_sub(d);
                    }
                }
                sink.finish();
                health2
                    .sink_dropped
                    .store(sink.dropped(), Ordering::Relaxed);
            })
            .map_err(|e| CounterError::SpawnFailed(format!("sampler thread: {e}")))?;
        Ok(Sampler {
            stop,
            health,
            flush,
            handle: Some(handle),
        })
    }

    /// Force an immediate out-of-cycle sample and block until one
    /// *complete* batch — started entirely after this call — has been
    /// handed to the sink. This is the drain hook's tool: a runtime
    /// quiescing mid-interval flushes a final consistent row instead of
    /// truncating the series up to an interval early. Returns `false` if
    /// the flush did not complete within ~5 s (e.g. the sampler was
    /// stopped concurrently).
    pub fn flush_now(&self) -> bool {
        let target = self.flush.requests.fetch_add(1, Ordering::AcqRel) + 1;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if self.flush.completed.load(Ordering::Acquire) >= target {
                return true;
            }
            if self.stop.load(Ordering::Acquire) || std::time::Instant::now() >= deadline {
                return self.flush.completed.load(Ordering::Acquire) >= target;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Failure accounting of this sampling run (live; shared with the
    /// sampling thread).
    pub fn health(&self) -> Arc<SamplerHealth> {
        self.health.clone()
    }

    /// Stop sampling and wait for the thread to flush its sink.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Evaluate one counter defensively. A panic or non-ok status becomes an
/// unavailable placeholder and pushes the counter into exponential backoff
/// (skipped batches still emit the placeholder, so every batch keeps the
/// full set of readings and CSV rows keep their width).
fn sample_one(
    counter: &Arc<dyn Counter>,
    reset: bool,
    st: &mut ReadState,
    health: &SamplerHealth,
    timestamp_ns: u64,
    sequence: u64,
) -> CounterValue {
    if st.skip > 0 {
        st.skip -= 1;
        return CounterValue::unavailable(timestamp_ns);
    }
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| counter.get_value(reset)));
    match result {
        Ok(v) if v.status.is_ok() => {
            st.consecutive_failures = 0;
            v
        }
        _ => {
            health.read_errors.fetch_add(1, Ordering::Relaxed);
            st.consecutive_failures = st.consecutive_failures.saturating_add(1);
            if st.consecutive_failures > 1 {
                // Repeated failure: back off 2, 4, ... up to 32 intervals,
                // jittered by one batch so a set of counters broken by the
                // same cause doesn't retry in lockstep forever.
                let base = 1u64
                    .checked_shl(st.consecutive_failures.min(6))
                    .unwrap_or(MAX_BACKOFF_INTERVALS)
                    .min(MAX_BACKOFF_INTERVALS);
                let jitter = splitmix64(sequence ^ (st.consecutive_failures as u64) << 32) & 1;
                st.skip = base - 1 + jitter;
                health.backoffs.fetch_add(1, Ordering::Relaxed);
            }
            CounterValue::unavailable(timestamp_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn sampler_collects_batches() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(1));
        let v2 = v.clone();
        reg.register_raw(
            "/test/v",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );

        let sink = MemorySink::new();
        let batches = sink.batches();
        let sampler = Sampler::start(
            &reg,
            SamplerConfig::new(vec!["/test/v".into()], Duration::from_millis(5)),
            Box::new(sink),
        )
        .unwrap();

        while batches.lock().len() < 3 {
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();

        let collected = batches.lock();
        assert!(collected.len() >= 3);
        assert_eq!(collected[0].readings.len(), 1);
        assert_eq!(collected[0].readings[0].0, "/test/v");
        assert_eq!(collected[0].readings[0].1.value, 1);
        // Sequence numbers are consecutive, timestamps monotone.
        for w in collected.windows(2) {
            assert_eq!(w[1].sequence, w[0].sequence + 1);
            assert!(w[1].timestamp_ns >= w[0].timestamp_ns);
        }
    }

    #[test]
    fn sampler_reset_on_read_yields_deltas() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_monotonic(
            "/test/m",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );

        let sink = MemorySink::new();
        let batches = sink.batches();
        let mut config = SamplerConfig::new(vec!["/test/m".into()], Duration::from_millis(5));
        config.reset_on_read = true;
        let sampler = Sampler::start(&reg, config, Box::new(sink)).unwrap();

        for _ in 0..5 {
            v.fetch_add(10, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(6));
        }
        sampler.stop();

        let collected = batches.lock();
        let sampled: i64 = collected.iter().map(|b| b.readings[0].1.value).sum();
        // Whatever the sampler did not yet see is still pending in the
        // counter; sampled deltas plus the remainder must equal the total
        // increment exactly (no double counting, no loss).
        let remainder = reg.evaluate("/test/m", false).unwrap().value;
        assert_eq!(sampled + remainder, v.load(Ordering::Relaxed));
        assert!(sampled > 0, "sampler should have observed some increments");
    }

    #[test]
    fn sampler_survives_panicking_counter() {
        let reg = CounterRegistry::new();
        reg.register_raw(
            "/test/bad",
            "h",
            "1",
            Arc::new(|| panic!("injected counter failure")),
        );
        let v = Arc::new(AtomicI64::new(5));
        let v2 = v.clone();
        reg.register_raw(
            "/test/good",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );

        // Silence the default hook for the intentional panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        let sink = MemorySink::new();
        let batches = sink.batches();
        let sampler = Sampler::start(
            &reg,
            SamplerConfig::new(
                vec!["/test/bad".into(), "/test/good".into()],
                Duration::from_millis(2),
            ),
            Box::new(sink),
        )
        .unwrap();
        let health = sampler.health();

        while batches.lock().len() < 10 {
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        std::panic::set_hook(prev);

        let collected = batches.lock();
        assert!(collected.len() >= 10);
        assert!(health.read_errors() >= 1, "failures must be recorded");
        assert!(health.backoffs() >= 1, "repeated failure must back off");
        for (i, b) in collected.iter().enumerate() {
            // Every batch keeps the full set of readings: the bad counter
            // is an unavailable placeholder, the good one stays sampled.
            assert_eq!(b.readings.len(), 2, "batch {i} lost a column");
            assert_eq!(b.sequence, i as u64);
            assert!(!b.readings[0].1.status.is_ok());
        }
        // The good counter was really evaluated, not placeholdered.
        assert!(collected
            .iter()
            .all(|b| { b.readings[1].1.status.is_ok() && b.readings[1].1.value == 5 }));
        // Backoff throttles the failing counter: far fewer evaluations
        // than batches.
        assert!(health.read_errors() < collected.len() as u64);
    }

    #[test]
    fn csv_rows_keep_width_with_failing_counter() {
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf);
            sink.begin(&["/a/bad".into(), "/a/good".into()]);
            sink.record(&SampleBatch {
                sequence: 0,
                timestamp_ns: 50,
                readings: vec![
                    ("/a/bad".into(), CounterValue::unavailable(50)),
                    ("/a/good".into(), CounterValue::new(8, 50)),
                ],
            });
            sink.finish();
        }
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().nth(1).unwrap(), "0,50,,8");
    }

    #[test]
    fn sampler_unknown_counter_errors_eagerly() {
        let reg = CounterRegistry::new();
        let result = Sampler::start(
            &reg,
            SamplerConfig::new(vec!["/none/x".into()], Duration::from_millis(5)),
            Box::new(MemorySink::new()),
        );
        assert!(result.is_err());
    }

    #[test]
    fn csv_sink_formats_rows() {
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf);
            sink.begin(&["/a/b".into()]);
            sink.record(&SampleBatch {
                sequence: 0,
                timestamp_ns: 123,
                readings: vec![("/a/b".into(), CounterValue::new(7, 123))],
            });
            sink.finish();
        }
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().next().unwrap(), "sequence,timestamp_ns,/a/b");
        assert_eq!(s.lines().nth(1).unwrap(), "0,123,7");
    }

    #[test]
    fn csv_header_escapes_names_with_commas_and_quotes() {
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf);
            sink.begin(&[
                "/statistics/median@/src/value,5".into(),
                "/app/\"quoted\"".into(),
                "/plain/name".into(),
            ]);
            sink.record(&SampleBatch {
                sequence: 0,
                timestamp_ns: 1,
                readings: vec![
                    ("a".into(), CounterValue::new(1, 1)),
                    ("b".into(), CounterValue::new(2, 1)),
                    ("c".into(), CounterValue::new(3, 1)),
                ],
            });
            sink.finish();
        }
        let s = String::from_utf8(buf).unwrap();
        let header = s.lines().next().unwrap();
        assert_eq!(
            header,
            "sequence,timestamp_ns,\"/statistics/median@/src/value,5\",\
             \"/app/\"\"quoted\"\"\",/plain/name"
        );
        // The data row keeps the same number of fields as the header.
        let fields = |line: &str| {
            let mut n = 0;
            let mut in_quotes = false;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => n += 1,
                    _ => {}
                }
            }
            n + 1
        };
        assert_eq!(fields(header), fields(s.lines().nth(1).unwrap()));
    }

    #[test]
    fn sampler_picks_up_topology_changes() {
        use crate::name::{CounterInstance, CounterName};
        use crate::value::{CounterInfo, CounterKind};

        let reg = CounterRegistry::new();
        let workers = Arc::new(AtomicI64::new(1));
        let w2 = workers.clone();
        let info = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
        let clock = reg.clock();
        reg.register_type(
            info,
            Arc::new(move |name, _| {
                let mut i = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
                i.name = name.canonical();
                Ok(Arc::new(crate::counter::RawCounter::new(
                    i,
                    clock.clone(),
                    Arc::new(|| 1),
                )) as Arc<dyn Counter>)
            }),
            Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| {
                for w in 0..w2.load(Ordering::Relaxed) {
                    f(CounterName::new("threads", "count")
                        .with_instance(CounterInstance::worker(0, w as u32)));
                }
            })),
        );

        let sink = MemorySink::new();
        let batches = sink.batches();
        let sampler = Sampler::start(
            &reg,
            SamplerConfig::new(
                vec!["/threads{locality#0/worker-thread#*}/count".into()],
                Duration::from_millis(2),
            ),
            Box::new(sink),
        )
        .unwrap();

        while batches.lock().len() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(batches.lock()[0].readings.len(), 1);

        // Topology change mid-run: one generation bump, and the next tick
        // re-expands the wildcard without restarting the sampler.
        workers.store(3, Ordering::Relaxed);
        reg.bump_generation();
        let seen = batches.lock().len();
        while batches.lock().last().map(|b| b.readings.len()).unwrap_or(0) < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();

        let collected = batches.lock();
        let wide = collected.iter().skip(seen).find(|b| b.readings.len() == 3);
        let wide = wide.expect("a post-bump batch samples all three workers");
        assert!(wide
            .readings
            .iter()
            .any(|(n, _)| n == "/threads{locality#0/worker-thread#2}/count"));
    }

    #[test]
    fn flush_now_forces_an_out_of_cycle_batch() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_raw(
            "/test/v",
            "h",
            "1",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        let sink = MemorySink::new();
        let batches = sink.batches();
        // Interval far longer than the test: every batch past the first
        // exists only because flush_now forced it.
        let sampler = Sampler::start(
            &reg,
            SamplerConfig::new(vec!["/test/v".into()], Duration::from_secs(60)),
            Box::new(sink),
        )
        .unwrap();

        v.store(7, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        assert!(sampler.flush_now(), "flush must complete");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "flush must not wait out the 60s interval"
        );
        // The flushed batch started after the store above, so it must see
        // the new value — a pre-request in-flight batch doesn't count.
        let last = batches.lock().last().cloned().expect("flushed batch");
        assert_eq!(last.readings[0].1.value, 7);

        v.store(9, Ordering::Relaxed);
        assert!(sampler.flush_now());
        let last = batches.lock().last().cloned().unwrap();
        assert_eq!(last.readings[0].1.value, 9, "each flush yields a fresh row");
        sampler.stop();
    }

    #[test]
    fn sampler_records_query_overhead() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/v", "h", "1", Arc::new(|| 1));
        let sink = MemorySink::new();
        let batches = sink.batches();
        let sampler = Sampler::start(
            &reg,
            SamplerConfig::new(vec!["/test/v".into()], Duration::from_millis(1)),
            Box::new(sink),
        )
        .unwrap();
        while batches.lock().len() < 5 {
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        let n = batches.lock().len() as i64;
        let count = reg
            .evaluate("/counters{locality#0/total}/overhead/count", false)
            .unwrap();
        assert!(count.value >= n, "every tick is one accounted batch");
    }

    fn batch(sequence: u64) -> SampleBatch {
        SampleBatch {
            sequence,
            timestamp_ns: sequence,
            readings: vec![("/a/b".into(), CounterValue::new(sequence as i64, sequence))],
        }
    }

    #[test]
    fn bounded_memory_sink_counts_every_eviction_exactly() {
        let mut sink = MemorySink::bounded(4);
        let batches = sink.batches();
        for s in 0..10 {
            sink.record(&batch(s));
        }
        // Forced wrap: 10 records into capacity 4 evicts exactly 6, and
        // the survivors are the 4 most recent.
        assert_eq!(sink.dropped(), 6);
        let kept: Vec<u64> = batches.lock().iter().map(|b| b.sequence).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    /// Writer that starts failing after `ok_rows` newline-terminated
    /// writes, like a pipe whose reader went away mid-run.
    struct FailingWriter {
        ok_writes: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(std::io::Error::other("injected write failure"));
            }
            self.ok_writes -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn csv_sink_counts_failed_rows_exactly_once() {
        // A healthy writer records without drops…
        let mut sink = CsvSink::new(FailingWriter { ok_writes: 100 });
        sink.begin(&["/a/b".into()]);
        sink.record(&batch(0));
        assert_eq!(SampleSink::dropped(&sink), 0, "healthy rows are not drops");
        // …a dead writer drops one per row, however many of the row's
        // individual field writes failed.
        let mut sink = CsvSink::new(FailingWriter { ok_writes: 0 });
        sink.begin(&["/a/b".into()]);
        for s in 0..5 {
            sink.record(&batch(s));
        }
        assert_eq!(
            SampleSink::dropped(&sink),
            5,
            "one drop per lost row, not per failed write"
        );
    }

    #[test]
    fn sampler_exports_sink_drop_counter() {
        let reg = CounterRegistry::new();
        reg.register_raw("/test/v", "h", "1", Arc::new(|| 1));
        let sink = MemorySink::bounded(2);
        let batches = sink.batches();
        let sampler = Sampler::start(
            &reg,
            SamplerConfig::new(vec!["/test/v".into()], Duration::from_millis(1)),
            Box::new(sink),
        )
        .unwrap();
        // Run long enough to wrap the 2-slot ring several times.
        while batches.lock().len() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for _ in 0..200 {
            if sampler.health().sink_dropped() >= 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let health = sampler.health();
        sampler.stop();
        let mirrored = health.sink_dropped();
        assert!(mirrored >= 3, "ring wrap must surface as sink drops");
        let exported = reg.evaluate("/counters/sampler/dropped", false).unwrap();
        assert_eq!(exported.value as u64, mirrored);
    }

    #[test]
    fn json_sink_emits_parseable_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonSink::new(&mut buf);
            sink.record(&SampleBatch {
                sequence: 1,
                timestamp_ns: 9,
                readings: vec![("/a/b".into(), CounterValue::new(3, 9))],
            });
            sink.finish();
        }
        let s = String::from_utf8(buf).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(s.trim()).unwrap();
        assert_eq!(parsed["sequence"], 1);
        assert_eq!(parsed["readings"][0][0], "/a/b");
    }
}
