//! Error type shared by the counter framework.

use std::fmt;

/// Errors produced when parsing counter names or operating the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterError {
    /// A counter name string violated the name grammar.
    InvalidName(String),
    /// No counter type is registered under the given type path.
    UnknownCounterType(String),
    /// The counter type exists but the requested instance does not.
    UnknownInstance(String),
    /// A counter instance could not be created (factory failure).
    CreationFailed(String),
    /// A derived counter referenced parameters that could not be interpreted.
    InvalidParameters(String),
    /// The operation requires a started counter/registry but it is stopped.
    NotStarted(String),
    /// A background thread (e.g. the sampler) could not be spawned.
    SpawnFailed(String),
}

impl CounterError {
    pub(crate) fn invalid_name(msg: impl Into<String>) -> Self {
        CounterError::InvalidName(msg.into())
    }
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::InvalidName(m) => write!(f, "invalid counter name: {m}"),
            CounterError::UnknownCounterType(m) => write!(f, "unknown counter type: {m}"),
            CounterError::UnknownInstance(m) => write!(f, "unknown counter instance: {m}"),
            CounterError::CreationFailed(m) => write!(f, "counter creation failed: {m}"),
            CounterError::InvalidParameters(m) => write!(f, "invalid counter parameters: {m}"),
            CounterError::NotStarted(m) => write!(f, "counter not started: {m}"),
            CounterError::SpawnFailed(m) => write!(f, "thread spawn failed: {m}"),
        }
    }
}

impl std::error::Error for CounterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CounterError::UnknownCounterType("/x/y".into());
        assert!(e.to_string().contains("/x/y"));
        let e = CounterError::invalid_name("boom");
        assert!(e.to_string().contains("boom"));
    }
}
