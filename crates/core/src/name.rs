//! Parsing and formatting of performance-counter names.
//!
//! Counter names follow the HPX grammar:
//!
//! ```text
//! /objectname{parentinstancename#parentindex/instancename#instanceindex}/countername@parameters
//! ```
//!
//! The instance block (`{...}`) and the parameter suffix (`@...`) are
//! optional. The counter name proper (`countername`) may itself contain
//! slashes (e.g. `time/average`). Instance indices may be a concrete
//! number (`worker-thread#3`) or the wildcard `#*`, which expands to every
//! live instance when the name is resolved against a
//! [`registry::CounterRegistry`](crate::registry::CounterRegistry).
//!
//! # Examples
//!
//! ```
//! use rpx_counters::name::CounterName;
//!
//! let n: CounterName = "/threads{locality#0/worker-thread#1}/time/average"
//!     .parse()
//!     .unwrap();
//! assert_eq!(n.object, "threads");
//! assert_eq!(n.counter, "time/average");
//! assert_eq!(n.to_string(), "/threads{locality#0/worker-thread#1}/time/average");
//! ```

use std::fmt;
use std::str::FromStr;

use crate::error::CounterError;

/// An instance index: either a concrete instance or the `#*` wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceIndex {
    /// A specific numbered instance, e.g. `worker-thread#3`.
    At(u32),
    /// The wildcard `#*`: all live instances of this kind.
    All,
}

impl fmt::Display for InstanceIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceIndex::At(i) => write!(f, "{i}"),
            InstanceIndex::All => write!(f, "*"),
        }
    }
}

/// One `name#index` component of an instance path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstancePart {
    /// The instance kind, e.g. `locality`, `worker-thread`, or `total`.
    pub name: String,
    /// The optional `#index` suffix.
    pub index: Option<InstanceIndex>,
}

impl InstancePart {
    /// A named part without an index (e.g. `total`).
    pub fn plain(name: impl Into<String>) -> Self {
        InstancePart {
            name: name.into(),
            index: None,
        }
    }

    /// A named part with a concrete index (e.g. `worker-thread#3`).
    pub fn indexed(name: impl Into<String>, index: u32) -> Self {
        InstancePart {
            name: name.into(),
            index: Some(InstanceIndex::At(index)),
        }
    }

    /// A named part with the `#*` wildcard.
    pub fn wildcard(name: impl Into<String>) -> Self {
        InstancePart {
            name: name.into(),
            index: Some(InstanceIndex::All),
        }
    }

    /// Whether this part carries the `#*` wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self.index, Some(InstanceIndex::All))
    }

    fn parse(s: &str) -> Result<Self, CounterError> {
        if s.is_empty() {
            return Err(CounterError::invalid_name("empty instance part"));
        }
        match s.split_once('#') {
            None => Ok(InstancePart::plain(s)),
            Some((name, idx)) => {
                if name.is_empty() {
                    return Err(CounterError::invalid_name("instance part with empty name"));
                }
                if idx == "*" {
                    Ok(InstancePart::wildcard(name))
                } else {
                    let i: u32 = idx.parse().map_err(|_| {
                        CounterError::invalid_name(format!("bad instance index `{idx}`"))
                    })?;
                    Ok(InstancePart::indexed(name, i))
                }
            }
        }
    }
}

impl fmt::Display for InstancePart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(i) = &self.index {
            write!(f, "#{i}")?;
        }
        Ok(())
    }
}

/// The full instance path inside `{...}`: a parent part followed by zero or
/// more child parts, e.g. `locality#0/worker-thread#1` or `locality#0/total`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterInstance {
    /// The parent instance, conventionally `locality#N`.
    pub parent: InstancePart,
    /// Child instance parts below the parent (often a single one).
    pub children: Vec<InstancePart>,
}

impl CounterInstance {
    /// The aggregate instance for a locality: `locality#loc/total`.
    pub fn total(locality: u32) -> Self {
        CounterInstance {
            parent: InstancePart::indexed("locality", locality),
            children: vec![InstancePart::plain("total")],
        }
    }

    /// A per-worker instance: `locality#loc/worker-thread#w`.
    pub fn worker(locality: u32, worker: u32) -> Self {
        CounterInstance {
            parent: InstancePart::indexed("locality", locality),
            children: vec![InstancePart::indexed("worker-thread", worker)],
        }
    }

    /// The wildcard worker instance: `locality#loc/worker-thread#*`.
    pub fn all_workers(locality: u32) -> Self {
        CounterInstance {
            parent: InstancePart::indexed("locality", locality),
            children: vec![InstancePart::wildcard("worker-thread")],
        }
    }

    /// Whether any component carries the `#*` wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.parent.is_wildcard() || self.children.iter().any(|c| c.is_wildcard())
    }

    /// Whether this is the `total` aggregate instance (last child named `total`).
    pub fn is_total(&self) -> bool {
        self.children
            .last()
            .map(|c| c.name == "total" && c.index.is_none())
            .unwrap_or(false)
    }

    fn parse(s: &str) -> Result<Self, CounterError> {
        let mut parts = s.split('/');
        let parent = InstancePart::parse(
            parts
                .next()
                .ok_or_else(|| CounterError::invalid_name("empty instance"))?,
        )?;
        let children = parts
            .map(InstancePart::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CounterInstance { parent, children })
    }
}

impl fmt::Display for CounterInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.parent)?;
        for c in &self.children {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

/// A fully structured counter name.
///
/// `CounterName` round-trips through its [`Display`](fmt::Display) and
/// [`FromStr`] implementations: `name.to_string().parse() == name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterName {
    /// The object (subsystem) the counter belongs to, e.g. `threads`.
    pub object: String,
    /// The optional instance path from the `{...}` block.
    pub instance: Option<CounterInstance>,
    /// The counter name proper; may contain slashes, e.g. `time/average`.
    pub counter: String,
    /// The optional `@parameters` suffix (verbatim, excluding the `@`).
    pub parameters: Option<String>,
}

impl CounterName {
    /// Build a name without instance or parameters, e.g. `/threads/time/average`.
    pub fn new(object: impl Into<String>, counter: impl Into<String>) -> Self {
        CounterName {
            object: object.into(),
            instance: None,
            counter: counter.into(),
            parameters: None,
        }
    }

    /// Attach an instance path.
    pub fn with_instance(mut self, instance: CounterInstance) -> Self {
        self.instance = Some(instance);
        self
    }

    /// Attach a parameter string (stored without the leading `@`).
    pub fn with_parameters(mut self, params: impl Into<String>) -> Self {
        self.parameters = Some(params.into());
        self
    }

    /// The *type path* of this counter: `/object/counter`, ignoring instance
    /// and parameters. Counter types are registered under this key.
    pub fn type_path(&self) -> String {
        format!("/{}/{}", self.object, self.counter)
    }

    /// Whether the name needs wildcard expansion before it can be resolved
    /// to concrete counter instances.
    pub fn has_wildcard(&self) -> bool {
        self.instance
            .as_ref()
            .map(CounterInstance::has_wildcard)
            .unwrap_or(false)
    }

    /// A copy of this name with the instance replaced.
    pub fn reinstantiate(&self, instance: CounterInstance) -> Self {
        CounterName {
            object: self.object.clone(),
            instance: Some(instance),
            counter: self.counter.clone(),
            parameters: self.parameters.clone(),
        }
    }

    /// The canonical string form (identical to `to_string`).
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for CounterName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}", self.object)?;
        if let Some(inst) = &self.instance {
            write!(f, "{{{inst}}}")?;
        }
        write!(f, "/{}", self.counter)?;
        if let Some(p) = &self.parameters {
            write!(f, "@{p}")?;
        }
        Ok(())
    }
}

impl FromStr for CounterName {
    type Err = CounterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix('/')
            .ok_or_else(|| CounterError::invalid_name("counter name must start with `/`"))?;

        // Split off `@parameters` first: everything after the first `@`
        // belongs to the parameters, verbatim.
        let (body, parameters) = match rest.split_once('@') {
            Some((b, p)) => (b, Some(p.to_owned())),
            None => (rest, None),
        };

        // The object name runs to the first `{` (instance block) or `/`
        // (no instance block).
        let brace = body.find('{');
        let slash = body.find('/');
        let (object, instance, counter) = match (brace, slash) {
            (Some(b), _) if slash.map(|sl| b < sl).unwrap_or(true) => {
                let object = &body[..b];
                let close = body
                    .find('}')
                    .ok_or_else(|| CounterError::invalid_name("unterminated `{` in name"))?;
                if close < b {
                    return Err(CounterError::invalid_name("`}` before `{` in name"));
                }
                let instance = CounterInstance::parse(&body[b + 1..close])?;
                let tail = &body[close + 1..];
                let counter = tail.strip_prefix('/').ok_or_else(|| {
                    CounterError::invalid_name("expected `/countername` after instance block")
                })?;
                (object, Some(instance), counter)
            }
            (_, Some(sl)) => (&body[..sl], None, &body[sl + 1..]),
            // No `/` at all (a brace after a slash is caught above; a brace
            // with no slash falls into the first arm since its guard is
            // vacuously true when `slash` is `None`).
            _ => {
                return Err(CounterError::invalid_name(
                    "counter name must contain `/countername` after the object",
                ))
            }
        };

        if object.is_empty() {
            return Err(CounterError::invalid_name("empty object name"));
        }
        if counter.is_empty() {
            return Err(CounterError::invalid_name("empty counter name"));
        }
        if counter.contains(['{', '}']) || object.contains('}') {
            return Err(CounterError::invalid_name("stray brace in counter name"));
        }

        Ok(CounterName {
            object: object.to_owned(),
            instance,
            counter: counter.to_owned(),
            parameters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> CounterName {
        s.parse()
            .unwrap_or_else(|e| panic!("failed to parse `{s}`: {e}"))
    }

    #[test]
    fn parses_plain_name() {
        let n = parse("/threads/time/average");
        assert_eq!(n.object, "threads");
        assert_eq!(n.instance, None);
        assert_eq!(n.counter, "time/average");
        assert_eq!(n.parameters, None);
    }

    #[test]
    fn parses_total_instance() {
        let n = parse("/threads{locality#0/total}/count/cumulative");
        let inst = n.instance.unwrap();
        assert_eq!(inst.parent, InstancePart::indexed("locality", 0));
        assert_eq!(inst.children, vec![InstancePart::plain("total")]);
        assert!(inst.is_total());
    }

    #[test]
    fn parses_worker_instance() {
        let n = parse("/threads{locality#0/worker-thread#7}/idle-rate");
        let inst = n.instance.unwrap();
        assert!(!inst.is_total());
        assert_eq!(
            inst.children,
            vec![InstancePart::indexed("worker-thread", 7)]
        );
    }

    #[test]
    fn parses_wildcard_instance() {
        let n = parse("/threads{locality#0/worker-thread#*}/time/average");
        assert!(n.has_wildcard());
        assert!(!n.instance.unwrap().is_total());
    }

    #[test]
    fn parses_parameters_with_embedded_names() {
        let n = parse(
            "/arithmetics/divide@/threads{locality#0/total}/time/cumulative,\
             /threads{locality#0/total}/count/cumulative",
        );
        assert_eq!(n.object, "arithmetics");
        assert_eq!(n.counter, "divide");
        let p = n.parameters.unwrap();
        assert!(p.starts_with("/threads"));
        assert!(p.contains(','));
    }

    #[test]
    fn parameters_keep_at_signs() {
        let n = parse("/statistics/average@/papi/CYCLES@x,50");
        assert_eq!(n.parameters.as_deref(), Some("/papi/CYCLES@x,50"));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "/threads/time/average",
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/worker-thread#3}/count/cumulative",
            "/threads{locality#0/worker-thread#*}/time/average-overhead",
            "/papi{locality#0/total}/OFFCORE_REQUESTS::ALL_DATA_RD",
            "/arithmetics/add@/a/b,/c/d",
            "/runtime{locality#1/total}/uptime",
        ] {
            let n = parse(s);
            assert_eq!(n.to_string(), s);
            let n2 = parse(&n.to_string());
            assert_eq!(n, n2);
        }
    }

    #[test]
    fn type_path_strips_instance_and_params() {
        let n = parse("/threads{locality#0/total}/time/average@p");
        assert_eq!(n.type_path(), "/threads/time/average");
    }

    #[test]
    fn rejects_bad_names() {
        for s in [
            "",
            "threads/time",
            "/",
            "/threads",
            "/threads{locality#0/time/average",
            "/threads{}/x",
            "/threads{locality#x}/y",
            "/{locality#0}/y",
            "/threads{locality#0}/",
        ] {
            assert!(s.parse::<CounterName>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn reinstantiate_replaces_instance() {
        let n = parse("/threads{locality#0/worker-thread#*}/time/average");
        let c = n.reinstantiate(CounterInstance::worker(0, 4));
        assert_eq!(
            c.to_string(),
            "/threads{locality#0/worker-thread#4}/time/average"
        );
    }

    #[test]
    fn builders_compose() {
        let n = CounterName::new("threads", "time/average")
            .with_instance(CounterInstance::total(0))
            .with_parameters("x");
        assert_eq!(n.to_string(), "/threads{locality#0/total}/time/average@x");
    }
}
