//! The [`Counter`] trait and the generic counter implementations every
//! subsystem builds on: raw gauges, monotonic counters, (sum, count)
//! averages, and elapsed-time counters.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::value::{CounterInfo, CounterKind, CounterValue};

/// Times any [`AverageCounter`] observed its (sum, count) source *below*
/// the stored baseline — impossible while sources are non-decreasing and
/// rebasing is serialized, so any nonzero value means a broken source (or
/// a regression in the rebase protocol). Process-global because averages
/// are constructed per registry instance; exposed as the
/// `/counters/health/average-underflows` counter and via
/// [`average_underflows`].
static AVERAGE_UNDERFLOWS: AtomicU64 = AtomicU64::new(0);

/// Total average-counter underflow observations in this process.
pub fn average_underflows() -> u64 {
    AVERAGE_UNDERFLOWS.load(Ordering::Relaxed)
}

/// Monotonic time source shared by a registry and all its counters.
///
/// Timestamps in [`CounterValue`] are nanoseconds since this clock's epoch,
/// so values from different counters of the same registry are comparable.
///
/// On x86-64 hosts with an invariant TSC the clock reads `rdtsc` and
/// scales ticks to nanoseconds with a multiplier calibrated at
/// construction — roughly half the cost of `Instant::now()`, which
/// matters because the runtime's overhead windows bracket sub-100 ns
/// code paths with two reads each (the instrument must be cheaper than
/// the thing it measures). Everywhere else (other architectures, miri,
/// hosts without `constant_tsc`) it falls back to `Instant`.
#[derive(Debug)]
pub struct Clock {
    epoch: Instant,
    tsc: Option<tsc::TscClock>,
}

impl Clock {
    /// A clock whose epoch is "now". Calibration of the TSC fast path
    /// busy-waits ~500µs once per clock; registries share one clock.
    pub fn new() -> Self {
        let epoch = Instant::now();
        let tsc = tsc::TscClock::calibrate(epoch);
        Clock { epoch, tsc }
    }

    /// Nanoseconds elapsed since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.tsc {
            Some(t) => t.now_ns(),
            None => self.epoch.elapsed().as_nanos() as u64,
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod tsc {
    use std::time::{Duration, Instant};

    /// Calibrated TSC reader: `ns = (ticks - base) * mult >> 32`.
    #[derive(Debug, Clone, Copy)]
    pub(super) struct TscClock {
        base: u64,
        /// Nanoseconds per tick as a 32.32 fixed-point value.
        mult: u64,
    }

    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: rdtsc is always available on x86-64.
        unsafe { std::arch::x86_64::_rdtsc() }
    }

    /// CPUID leaf 0x8000_0007, EDX bit 8: the TSC runs at a constant
    /// rate and never stops (constant_tsc + nonstop_tsc). Without it,
    /// frequency scaling would silently warp every duration.
    fn invariant_tsc() -> bool {
        if std::arch::x86_64::__cpuid(0x8000_0000).eax < 0x8000_0007 {
            return false;
        }
        std::arch::x86_64::__cpuid(0x8000_0007).edx & (1 << 8) != 0
    }

    impl TscClock {
        pub(super) fn calibrate(epoch: Instant) -> Option<TscClock> {
            if !invariant_tsc() {
                return None;
            }
            let base = rdtsc();
            // Busy-wait, not sleep: a sleeping calibrator can be
            // descheduled for milliseconds, and the spin keeps the
            // window — and thus the relative calibration error
            // (~clock-read noise / window) — tightly bounded.
            let spin = Instant::now();
            while spin.elapsed() < Duration::from_micros(500) {
                std::hint::spin_loop();
            }
            let ticks = rdtsc().saturating_sub(base);
            let ns = epoch.elapsed().as_nanos() as u64;
            if ticks == 0 || ns == 0 {
                return None;
            }
            let mult = ((ns as u128) << 32) / ticks as u128;
            if mult == 0 || mult > u64::MAX as u128 {
                return None;
            }
            Some(TscClock {
                base,
                mult: mult as u64,
            })
        }

        #[inline]
        pub(super) fn now_ns(&self) -> u64 {
            let ticks = rdtsc().saturating_sub(self.base);
            ((ticks as u128 * self.mult as u128) >> 32) as u64
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
mod tsc {
    use std::time::Instant;

    /// TSC fast path is unavailable; [`super::Clock`] uses `Instant`.
    #[derive(Debug, Clone, Copy)]
    pub(super) enum TscClock {}

    impl TscClock {
        pub(super) fn calibrate(_epoch: Instant) -> Option<TscClock> {
            None
        }

        pub(super) fn now_ns(&self) -> u64 {
            match *self {}
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

/// A live performance-counter instance.
///
/// Counters are cheap to evaluate and safe to query from any thread,
/// including concurrently with the instrumented code — this is the property
/// that lets the runtime introspect itself without stopping the world.
pub trait Counter: Send + Sync {
    /// Metadata (canonical name, kind, help text, unit).
    fn info(&self) -> CounterInfo;

    /// Evaluate the counter. With `reset`, atomically restart the
    /// counter's accumulation after reading (HPX `evaluate(reset=true)`).
    fn get_value(&self, reset: bool) -> CounterValue;

    /// Restart accumulation without reading.
    fn reset(&self);

    /// Hook invoked when the counter becomes part of the active set.
    fn start(&self) {}

    /// Hook invoked when the counter leaves the active set.
    fn stop(&self) {}

    /// Downcast hook for counters with richer payloads than a scalar
    /// (e.g. [`crate::histogram::HistogramCounter`]).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Closure type used by pull-based counters to read instrumented state.
pub type ValueFn = Arc<dyn Fn() -> i64 + Send + Sync>;

/// Closure type for (sum, count) averages.
pub type PairFn = Arc<dyn Fn() -> (u64, u64) + Send + Sync>;

/// An instantaneous gauge: every evaluation re-reads the source closure.
/// `reset` is a no-op because the quantity is not accumulated.
pub struct RawCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    read: ValueFn,
}

impl RawCounter {
    /// Build from metadata and a source closure.
    pub fn new(info: CounterInfo, clock: Arc<Clock>, read: ValueFn) -> Self {
        RawCounter { info, clock, read }
    }
}

impl Counter for RawCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, _reset: bool) -> CounterValue {
        CounterValue::new((self.read)(), self.clock.now_ns())
    }

    fn reset(&self) {}
}

/// A monotonically increasing counter over a non-decreasing source.
///
/// Reset semantics: resetting records the current source value as a
/// baseline; subsequent reads report the delta since the last reset. This
/// is what makes per-sample measurement (`evaluate`, `reset`, run,
/// `evaluate`) work while the underlying runtime keeps counting globally.
pub struct MonotonicCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    read: ValueFn,
    baseline: AtomicI64,
}

impl MonotonicCounter {
    /// Build from metadata and a non-decreasing source closure.
    pub fn new(info: CounterInfo, clock: Arc<Clock>, read: ValueFn) -> Self {
        MonotonicCounter {
            info,
            clock,
            read,
            baseline: AtomicI64::new(0),
        }
    }
}

impl Counter for MonotonicCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let raw = (self.read)();
        let base = if reset {
            self.baseline.swap(raw, Ordering::AcqRel)
        } else {
            self.baseline.load(Ordering::Acquire)
        };
        CounterValue::new(raw - base, self.clock.now_ns())
    }

    fn reset(&self) {
        self.baseline.store((self.read)(), Ordering::Release);
    }
}

/// An average maintained as a (sum, count) pair, e.g. mean task duration
/// = cumulative execution time / number of tasks.
///
/// Reset stores baselines for both components, so after a reset the counter
/// reports the average over the *new* interval only — exactly the paper's
/// per-sample protocol.
pub struct AverageCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    read: PairFn,
    /// Baseline (sum, count) of the last reset, read and replaced as one
    /// unit. A lock (not a pair of atomics): with independent swaps, two
    /// concurrent reset-reads could interleave source read A → read B →
    /// swap B → swap A, re-installing A's *older* baseline so the
    /// increments between A's and B's reads are counted twice by one
    /// caller and never again by anyone — and a mismatched (sum from A,
    /// count from B) pair corrupts the quotient besides.
    base: Mutex<(u64, u64)>,
}

impl AverageCounter {
    /// Build from metadata and a (sum, count) source closure.
    pub fn new(info: CounterInfo, clock: Arc<Clock>, read: PairFn) -> Self {
        AverageCounter {
            info,
            clock,
            read,
            base: Mutex::new((0, 0)),
        }
    }

    fn snapshot(&self, reset: bool) -> (u64, u64) {
        // The source must be read *under* the lock: serialized read-and-
        // rebase is what guarantees every stored baseline was actually
        // observed at a point no later than the next caller's read, so
        // deltas partition the source's growth exactly (no increment is
        // lost or double-counted across resets).
        let mut base = self.base.lock();
        let (sum, count) = (self.read)();
        let (bs, bc) = *base;
        if sum < bs || count < bc {
            // A non-decreasing source read under the same lock that stored
            // the baseline cannot go backwards; don't let saturating_sub
            // silently mask a broken source.
            AVERAGE_UNDERFLOWS.fetch_add(1, Ordering::Relaxed);
        }
        if reset {
            *base = (sum, count);
        }
        (sum.saturating_sub(bs), count.saturating_sub(bc))
    }
}

impl Counter for AverageCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let ts = self.clock.now_ns();
        let (sum, count) = self.snapshot(reset);
        if count == 0 {
            return CounterValue::empty(ts);
        }
        CounterValue::new((sum / count) as i64, ts).with_count(count)
    }

    fn reset(&self) {
        let mut base = self.base.lock();
        *base = (self.read)();
    }
}

/// Nanoseconds elapsed since creation or since the last reset
/// (`/runtime/uptime`).
pub struct ElapsedTimeCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    started_ns: AtomicU64,
}

impl ElapsedTimeCounter {
    /// Build with the reference point set to "now".
    pub fn new(info: CounterInfo, clock: Arc<Clock>) -> Self {
        let started = clock.now_ns();
        ElapsedTimeCounter {
            info,
            clock,
            started_ns: AtomicU64::new(started),
        }
    }
}

impl Counter for ElapsedTimeCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let now = self.clock.now_ns();
        let started = if reset {
            self.started_ns.swap(now, Ordering::AcqRel)
        } else {
            self.started_ns.load(Ordering::Acquire)
        };
        CounterValue::new(now.saturating_sub(started) as i64, now)
    }

    fn reset(&self) {
        self.started_ns
            .store(self.clock.now_ns(), Ordering::Release);
    }
}

/// A settable gauge owned by application code (`register_value`): the
/// producer stores values, consumers read them through the counter API.
pub struct ValueCell {
    info: CounterInfo,
    clock: Arc<Clock>,
    value: AtomicI64,
}

impl ValueCell {
    /// Build with an initial value of zero.
    pub fn new(info: CounterInfo, clock: Arc<Clock>) -> Self {
        ValueCell {
            info,
            clock,
            value: AtomicI64::new(0),
        }
    }

    /// Store a new value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Release);
    }

    /// Add to the current value, returning the new value.
    pub fn add(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, Ordering::AcqRel) + delta
    }
}

impl Counter for ValueCell {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let ts = self.clock.now_ns();
        let v = if reset {
            self.value.swap(0, Ordering::AcqRel)
        } else {
            self.value.load(Ordering::Acquire)
        };
        CounterValue::new(v, ts)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Release);
    }
}

/// Convenience constructor for [`CounterInfo`] used by subsystems.
pub fn info(
    name: impl Into<String>,
    kind: CounterKind,
    help: impl Into<String>,
    unit: impl Into<String>,
) -> CounterInfo {
    CounterInfo::new(name, kind, help, unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64 as TestAtomic;

    fn clock() -> Arc<Clock> {
        Arc::new(Clock::new())
    }

    fn test_info(name: &str) -> CounterInfo {
        CounterInfo::new(name, CounterKind::Raw, "test", "1")
    }

    #[test]
    fn raw_counter_reads_source() {
        let src = Arc::new(TestAtomic::new(5));
        let s2 = src.clone();
        let c = RawCounter::new(
            test_info("/t/raw"),
            clock(),
            Arc::new(move || s2.load(Ordering::Relaxed)),
        );
        assert_eq!(c.get_value(false).value, 5);
        src.store(9, Ordering::Relaxed);
        assert_eq!(c.get_value(true).value, 9); // reset is a no-op
        assert_eq!(c.get_value(false).value, 9);
    }

    #[test]
    fn monotonic_counter_reset_rebaselines() {
        let src = Arc::new(TestAtomic::new(0));
        let s2 = src.clone();
        let c = MonotonicCounter::new(
            test_info("/t/mono"),
            clock(),
            Arc::new(move || s2.load(Ordering::Relaxed)),
        );
        src.store(10, Ordering::Relaxed);
        assert_eq!(c.get_value(true).value, 10); // read + reset
        src.store(25, Ordering::Relaxed);
        assert_eq!(c.get_value(false).value, 15); // delta since reset
        c.reset();
        assert_eq!(c.get_value(false).value, 0);
    }

    #[test]
    fn average_counter_divides_deltas() {
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (sum.clone(), count.clone());
        let c = AverageCounter::new(
            test_info("/t/avg"),
            clock(),
            Arc::new(move || (s2.load(Ordering::Relaxed), c2.load(Ordering::Relaxed))),
        );
        sum.store(100, Ordering::Relaxed);
        count.store(4, Ordering::Relaxed);
        let v = c.get_value(true);
        assert_eq!(v.value, 25);
        assert_eq!(v.count, 4);
        // After reset, only new contributions count.
        sum.store(160, Ordering::Relaxed);
        count.store(6, Ordering::Relaxed);
        let v = c.get_value(false);
        assert_eq!(v.value, 30); // (160-100)/(6-4)
        assert_eq!(v.count, 2);
    }

    #[test]
    fn average_counter_concurrent_resets_conserve_counts() {
        // Regression for the lost-increment race: with the baseline held
        // as two independent atomics, resets racing each other (and the
        // source) could re-install a stale baseline, so the per-interval
        // count deltas summed across readers drifted from the true total.
        // With the serialized rebase protocol the reset-read deltas must
        // partition the source exactly: Σ deltas + final remainder ==
        // total increments, on every run.
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (sum.clone(), count.clone());
        let counter = Arc::new(AverageCounter::new(
            test_info("/t/avg"),
            clock(),
            Arc::new(move || (s2.load(Ordering::Relaxed), c2.load(Ordering::Relaxed))),
        ));
        let underflows_before = average_underflows();

        const INCREMENTS: u64 = 100_000;
        let writer = {
            let (sum, count) = (sum.clone(), count.clone());
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    // sum grows by 3 per event, count by 1 — and sum is
                    // bumped first, so a torn read sees sum ahead of
                    // count, never behind (the average stays ≥ 0).
                    sum.fetch_add(3, Ordering::Relaxed);
                    count.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    let mut harvested = 0u64;
                    for _ in 0..2_000 {
                        harvested += counter.get_value(true).count;
                    }
                    harvested
                })
            })
            .collect();
        writer.join().unwrap();
        let harvested: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        let remainder = counter.get_value(false).count;
        assert_eq!(
            harvested + remainder,
            INCREMENTS,
            "reset-read deltas must partition the source exactly"
        );
        // The underflow checks live in this same test because the detector
        // is process-global: a sibling test tripping it on purpose would
        // race these assertions.
        assert_eq!(
            average_underflows(),
            underflows_before,
            "a monotonic source must never trip the underflow detector"
        );
        // A *broken* (decreasing) source must be surfaced in the health
        // counter instead of being silently clamped by saturating_sub.
        let src = Arc::new(AtomicU64::new(100));
        let s2 = src.clone();
        let broken = AverageCounter::new(
            test_info("/t/avg-broken"),
            clock(),
            Arc::new(move || (s2.load(Ordering::Relaxed), 1)),
        );
        let _ = broken.get_value(true); // baseline (100, 1)
        src.store(40, Ordering::Relaxed); // source goes backwards
        let v = broken.get_value(false);
        assert_eq!(v.count, 0, "clamped, not wrapped");
        assert_eq!(
            average_underflows(),
            underflows_before + 1,
            "underflow recorded"
        );
    }

    #[test]
    fn average_counter_empty_interval_reports_new_data() {
        let c = AverageCounter::new(test_info("/t/avg"), clock(), Arc::new(|| (0, 0)));
        let v = c.get_value(false);
        assert_eq!(v.status, crate::value::CounterStatus::NewData);
        assert_eq!(v.count, 0);
    }

    #[test]
    fn elapsed_time_counter_grows_and_resets() {
        let c = ElapsedTimeCounter::new(test_info("/t/up"), clock());
        std::thread::sleep(std::time::Duration::from_millis(2));
        let v1 = c.get_value(false).value;
        assert!(v1 >= 1_000_000, "expected >=1ms elapsed, got {v1}ns");
        let _ = c.get_value(true);
        let v2 = c.get_value(false).value;
        assert!(v2 < v1, "reset should restart the reference point");
    }

    #[test]
    fn value_cell_set_add_reset() {
        let c = ValueCell::new(test_info("/t/cell"), clock());
        c.set(7);
        assert_eq!(c.get_value(false).value, 7);
        assert_eq!(c.add(3), 10);
        assert_eq!(c.get_value(true).value, 10); // read-and-clear
        assert_eq!(c.get_value(false).value, 0);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let c = ValueCell::new(test_info("/t/cell"), clock());
        let t1 = c.get_value(false).timestamp_ns;
        let t2 = c.get_value(false).timestamp_ns;
        assert!(t2 >= t1);
    }
}
