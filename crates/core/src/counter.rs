//! The [`Counter`] trait and the generic counter implementations every
//! subsystem builds on: raw gauges, monotonic counters, (sum, count)
//! averages, and elapsed-time counters.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::value::{CounterInfo, CounterKind, CounterValue};

/// Times any [`AverageCounter`] observed its (sum, count) source *below*
/// the stored baseline — impossible while sources are non-decreasing and
/// rebasing is serialized, so any nonzero value means a broken source (or
/// a regression in the rebase protocol). Process-global because averages
/// are constructed per registry instance; exposed as the
/// `/counters/health/average-underflows` counter and via
/// [`average_underflows`].
static AVERAGE_UNDERFLOWS: AtomicU64 = AtomicU64::new(0);

/// Total average-counter underflow observations in this process.
pub fn average_underflows() -> u64 {
    AVERAGE_UNDERFLOWS.load(Ordering::Relaxed)
}

/// Outcome of one [`Clock::check_drift`] cross-check against `Instant`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDrift {
    /// The clock runs on `Instant` (no TSC fast path); nothing to check.
    Instant,
    /// TSC vs `Instant` relative error is inside the 500 ppm tolerance
    /// (signed ppm: positive means the TSC reads ahead of `Instant`).
    InTolerance(i64),
    /// The error exceeded tolerance; the 32.32 multiplier was re-derived
    /// from the full epoch→now window. The reported ppm is the error that
    /// triggered the re-derivation.
    Recalibrated(i64),
    /// The TSC proved unstable (two consecutive checks beyond the hard
    /// bound — i.e. re-derivation didn't help — or too many
    /// re-derivations); the clock fell back to `Instant` permanently.
    Disabled(i64),
    /// Another thread's check was in flight, or the observation window was
    /// too short to judge; nothing was done.
    Skipped,
}

/// Monotonic time source shared by a registry and all its counters.
///
/// Timestamps in [`CounterValue`] are nanoseconds since this clock's epoch,
/// so values from different counters of the same registry are comparable.
///
/// On x86-64 hosts with an invariant TSC the clock reads `rdtsc` and
/// scales ticks to nanoseconds with a 32.32 fixed-point multiplier —
/// roughly half the cost of `Instant::now()`, which matters because the
/// runtime's overhead windows bracket sub-100 ns code paths with two reads
/// each (the instrument must be cheaper than the thing it measures).
/// Everywhere else (other architectures, miri, hosts without
/// `constant_tsc`) it falls back to `Instant`.
///
/// The multiplier is first derived from a short (~500 µs) busy-wait window
/// at construction, which bounds its relative error at roughly the
/// clock-read noise divided by the window — good enough for sub-second
/// runs, but over hours even a few-hundred-ppm rate error accumulates into
/// visible skew on every duration counter. [`Clock::check_drift`] is the
/// fix: a periodic cross-check (the runtime calls it from the watchdog
/// tick) compares the TSC-derived elapsed time against `Instant` and
/// re-derives the multiplier from the *entire* epoch→now window — whose
/// relative error shrinks as the run ages — whenever the two disagree by
/// more than 500 ppm. Re-derivation is rate-only and never steps the
/// reported time: the clock value stays continuous and monotone, only its
/// forward rate changes. A TSC that keeps drifting past the hard bound is
/// declared unstable and the clock falls back to `Instant` permanently
/// (clamped so the switch never steps backwards either).
#[derive(Debug)]
pub struct Clock {
    epoch: Instant,
    tsc: Option<tsc::TscClock>,
    /// Times [`check_drift`](Self::check_drift) re-derived the multiplier
    /// (`/counters/clock/recalibrations`).
    recalibrations: AtomicU64,
    /// Last observed signed TSC−`Instant` error in ppm
    /// (`/counters/clock/drift-ppm`).
    drift_ppm: AtomicI64,
}

/// Relative TSC error (ppm) above which the multiplier is re-derived.
const DRIFT_TOLERANCE_PPM: i64 = 500;
/// Relative error (ppm) treated as a stability strike. One strike still
/// re-derives (the short bootstrap window can easily be a percent off on
/// a noisy host); two *consecutive* strikes mean re-derivation didn't
/// help and the TSC rate itself is untrustworthy.
const DRIFT_UNSTABLE_PPM: i64 = 10_000;
/// Re-derivations after which a still-drifting TSC is declared unstable.
const MAX_RECALIBRATIONS: u64 = 8;
/// Minimum observation window for a drift verdict: below this, scheduling
/// noise on the two paired clock reads dominates the ppm estimate.
const MIN_DRIFT_WINDOW_NS: u64 = 100_000_000;

impl Clock {
    /// A clock whose epoch is "now". Calibration of the TSC fast path
    /// busy-waits ~500µs once per clock; registries share one clock.
    pub fn new() -> Self {
        let epoch = Instant::now();
        let tsc = tsc::TscClock::calibrate(epoch);
        Clock {
            epoch,
            tsc,
            recalibrations: AtomicU64::new(0),
            drift_ppm: AtomicI64::new(0),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.tsc {
            Some(t) => t.now_ns(self.epoch),
            None => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Cross-check the TSC fast path against `Instant` and correct it.
    ///
    /// Intended to be called periodically (the runtime watchdog ticks it);
    /// concurrent calls are safe — one wins, the rest return
    /// [`ClockDrift::Skipped`]. See the type-level docs for the policy.
    pub fn check_drift(&self) -> ClockDrift {
        let Some(t) = &self.tsc else {
            return ClockDrift::Instant;
        };
        let outcome = t.cross_check(self.epoch);
        match outcome {
            ClockDrift::InTolerance(ppm) | ClockDrift::Disabled(ppm) => {
                self.drift_ppm.store(ppm, Ordering::Relaxed);
            }
            ClockDrift::Recalibrated(ppm) => {
                self.drift_ppm.store(ppm, Ordering::Relaxed);
                self.recalibrations.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        outcome
    }

    /// Times the multiplier was re-derived by [`check_drift`](Self::check_drift).
    pub fn recalibrations(&self) -> u64 {
        self.recalibrations.load(Ordering::Relaxed)
    }

    /// Last signed TSC−`Instant` error observed by a completed drift
    /// check, in ppm (0 before the first check, or on `Instant` clocks).
    pub fn last_drift_ppm(&self) -> i64 {
        self.drift_ppm.load(Ordering::Relaxed)
    }

    /// Whether the TSC fast path is currently in use (false on non-x86
    /// hosts, without invariant TSC, or after a permanent fallback).
    pub fn tsc_active(&self) -> bool {
        self.tsc.as_ref().is_some_and(|t| t.is_active())
    }

    /// Test hook: skew the TSC multiplier by `num/den` so drift-correction
    /// paths can be exercised deterministically. No-op on `Instant` clocks.
    #[doc(hidden)]
    pub fn skew_tsc_for_test(&self, num: u64, den: u64) {
        if let Some(t) = &self.tsc {
            t.skew(num, den);
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod tsc {
    use std::sync::atomic::{fence, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    use super::ClockDrift;

    /// Calibrated TSC reader: `ns = offset + (ticks - base) * mult >> 32`.
    ///
    /// The `(base, offset_ns, mult)` triple forms one *segment* of a
    /// piecewise-linear tick→ns map and must be read consistently, so the
    /// three words sit behind a seqlock: `seq` is even when the segment is
    /// stable and odd while [`cross_check`](Self::cross_check) installs a
    /// new one. Readers retry on a torn read; the writer runs at watchdog
    /// cadence (≤ 1/s), so retries are vanishingly rare and the fast path
    /// costs two extra uncontended loads. `mult == 0` is the permanent
    /// `Instant`-fallback sentinel; `offset_ns` then carries the floor
    /// that keeps the switch monotone.
    #[derive(Debug)]
    pub(super) struct TscClock {
        /// Seqlock word: even = stable, odd = writer in flight.
        seq: AtomicU64,
        /// Tick count at the start of the current segment.
        base: AtomicU64,
        /// Clock value (ns since epoch) at the start of the segment.
        offset_ns: AtomicU64,
        /// Nanoseconds per tick as a 32.32 fixed-point value; 0 disables
        /// the TSC path permanently.
        mult: AtomicU64,
        /// Tick count at the epoch (immutable): re-derivations measure the
        /// rate over the whole epoch→now window, not the short bootstrap
        /// window.
        epoch_ticks: u64,
        /// Re-derivations so far; past [`super::MAX_RECALIBRATIONS`] a
        /// still-drifting TSC is declared unstable.
        recal_count: AtomicU64,
        /// Consecutive checks whose error exceeded the hard bound. The
        /// first one re-derives (the bootstrap window is short and noisy,
        /// so a large initial error is expected and fixable); a second in
        /// a row means re-derivation did not help — the TSC is unstable.
        strikes: AtomicU64,
    }

    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: rdtsc is always available on x86-64.
        unsafe { std::arch::x86_64::_rdtsc() }
    }

    /// CPUID leaf 0x8000_0007, EDX bit 8: the TSC runs at a constant
    /// rate and never stops (constant_tsc + nonstop_tsc). Without it,
    /// frequency scaling would silently warp every duration.
    fn invariant_tsc() -> bool {
        if std::arch::x86_64::__cpuid(0x8000_0000).eax < 0x8000_0007 {
            return false;
        }
        std::arch::x86_64::__cpuid(0x8000_0007).edx & (1 << 8) != 0
    }

    impl TscClock {
        pub(super) fn calibrate(epoch: Instant) -> Option<TscClock> {
            if !invariant_tsc() {
                return None;
            }
            let base = rdtsc();
            // Busy-wait, not sleep: a sleeping calibrator can be
            // descheduled for milliseconds, and the spin keeps the
            // window — and thus the relative calibration error
            // (~clock-read noise / window) — tightly bounded.
            let spin = Instant::now();
            while spin.elapsed() < Duration::from_micros(500) {
                std::hint::spin_loop();
            }
            let ticks = rdtsc().saturating_sub(base);
            let ns = epoch.elapsed().as_nanos() as u64;
            if ticks == 0 || ns == 0 {
                return None;
            }
            let mult = ((ns as u128) << 32) / ticks as u128;
            if mult == 0 || mult > u64::MAX as u128 {
                return None;
            }
            Some(TscClock {
                seq: AtomicU64::new(0),
                // First segment covers the whole run so far: it starts at
                // the epoch (`base` ticks ↦ 0 ns).
                base: AtomicU64::new(base),
                offset_ns: AtomicU64::new(0),
                mult: AtomicU64::new(mult as u64),
                epoch_ticks: base,
                recal_count: AtomicU64::new(0),
                strikes: AtomicU64::new(0),
            })
        }

        /// Seqlock read of the current `(base, offset, mult)` segment.
        #[inline]
        fn segment(&self) -> (u64, u64, u64) {
            loop {
                let s1 = self.seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let base = self.base.load(Ordering::Relaxed);
                let offset = self.offset_ns.load(Ordering::Relaxed);
                let mult = self.mult.load(Ordering::Relaxed);
                // The Acquire fence orders the data loads before the
                // second seq load: if seq is unchanged (and even), no
                // writer ran in between and the triple is consistent.
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return (base, offset, mult);
                }
            }
        }

        #[inline]
        pub(super) fn now_ns(&self, epoch: Instant) -> u64 {
            let (base, offset, mult) = self.segment();
            if mult == 0 {
                // Permanent fallback: `offset` is the last TSC reading,
                // a floor that keeps the switch to `Instant` monotone.
                return (epoch.elapsed().as_nanos() as u64).max(offset);
            }
            let ticks = rdtsc().saturating_sub(base);
            offset + ((ticks as u128 * mult as u128) >> 32) as u64
        }

        pub(super) fn is_active(&self) -> bool {
            self.segment().2 != 0
        }

        /// Compare the TSC-derived time against `Instant` and, when the
        /// relative error exceeds tolerance, install a new segment whose
        /// rate comes from the whole epoch→now window. The new segment
        /// starts at the clock's *current* reading, so the correction
        /// changes only the forward rate — no step, no backwards jump.
        pub(super) fn cross_check(&self, epoch: Instant) -> ClockDrift {
            let inst_ns = epoch.elapsed().as_nanos() as u64;
            if inst_ns < super::MIN_DRIFT_WINDOW_NS {
                return ClockDrift::Skipped;
            }
            // Writer lock: CAS even → odd. Losing the race means another
            // checker is at it right now; skip rather than queue.
            let s = self.seq.load(Ordering::Relaxed);
            if s & 1 == 1
                || self
                    .seq
                    .compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
            {
                return ClockDrift::Skipped;
            }
            // Data reads below see the stable segment: we hold the lock.
            let base = self.base.load(Ordering::Relaxed);
            let offset = self.offset_ns.load(Ordering::Relaxed);
            let mult = self.mult.load(Ordering::Relaxed);
            let unlock = |this: &Self| this.seq.store(s + 2, Ordering::Release);
            if mult == 0 {
                unlock(self);
                return ClockDrift::Disabled(0);
            }
            let now_ticks = rdtsc();
            let tsc_ns =
                offset + ((now_ticks.saturating_sub(base) as u128 * mult as u128) >> 32) as u64;
            let err_ns = tsc_ns as i64 - inst_ns as i64;
            let ppm = err_ns.saturating_mul(1_000_000) / inst_ns as i64;
            if ppm.abs() <= super::DRIFT_TOLERANCE_PPM {
                self.strikes.store(0, Ordering::Relaxed);
                unlock(self);
                return ClockDrift::InTolerance(ppm);
            }
            let window_ticks = now_ticks.saturating_sub(self.epoch_ticks);
            let new_mult = if window_ticks == 0 {
                0
            } else {
                let m = ((inst_ns as u128) << 32) / window_ticks as u128;
                u64::try_from(m).unwrap_or(0)
            };
            // A beyond-hard-bound error earns a strike, but the *first*
            // one still re-derives: the bootstrap calibration window is
            // only ~500 µs, so a multi-percent initial error is common
            // (virtualized hosts especially) and exactly what the
            // whole-window re-derivation fixes. Two strikes in a row —
            // re-derivation didn't help — means the TSC rate itself is
            // untrustworthy.
            let strikes = if ppm.abs() > super::DRIFT_UNSTABLE_PPM {
                self.strikes.fetch_add(1, Ordering::Relaxed) + 1
            } else {
                self.strikes.store(0, Ordering::Relaxed);
                0
            };
            let unstable = strikes >= 2
                || new_mult == 0
                || self.recal_count.fetch_add(1, Ordering::Relaxed) + 1 > super::MAX_RECALIBRATIONS;
            if unstable {
                // Permanent fallback. The current reading becomes the
                // floor for the Instant path so time never steps back.
                self.base.store(now_ticks, Ordering::Relaxed);
                self.offset_ns.store(tsc_ns, Ordering::Relaxed);
                self.mult.store(0, Ordering::Relaxed);
                unlock(self);
                return ClockDrift::Disabled(ppm);
            }
            // Rate-only correction: new segment starts here and now, at
            // the value the old segment reports for this instant.
            self.base.store(now_ticks, Ordering::Relaxed);
            self.offset_ns.store(tsc_ns, Ordering::Relaxed);
            self.mult.store(new_mult, Ordering::Relaxed);
            unlock(self);
            ClockDrift::Recalibrated(ppm)
        }

        /// Test hook: scale the live multiplier by `num/den`.
        pub(super) fn skew(&self, num: u64, den: u64) {
            let s = self.seq.load(Ordering::Relaxed);
            if s & 1 == 1
                || self
                    .seq
                    .compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
            {
                return;
            }
            let mult = self.mult.load(Ordering::Relaxed);
            if mult != 0 && den != 0 {
                let skewed = (mult as u128 * num as u128 / den as u128).min(u64::MAX as u128);
                self.mult.store(skewed as u64, Ordering::Relaxed);
            }
            self.seq.store(s + 2, Ordering::Release);
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
mod tsc {
    use std::time::Instant;

    use super::ClockDrift;

    /// TSC fast path is unavailable; [`super::Clock`] uses `Instant`.
    #[derive(Debug, Clone, Copy)]
    pub(super) enum TscClock {}

    impl TscClock {
        pub(super) fn calibrate(_epoch: Instant) -> Option<TscClock> {
            None
        }

        pub(super) fn now_ns(&self, _epoch: Instant) -> u64 {
            match *self {}
        }

        pub(super) fn is_active(&self) -> bool {
            match *self {}
        }

        pub(super) fn cross_check(&self, _epoch: Instant) -> ClockDrift {
            match *self {}
        }

        pub(super) fn skew(&self, _num: u64, _den: u64) {
            match *self {}
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

/// A live performance-counter instance.
///
/// Counters are cheap to evaluate and safe to query from any thread,
/// including concurrently with the instrumented code — this is the property
/// that lets the runtime introspect itself without stopping the world.
pub trait Counter: Send + Sync {
    /// Metadata (canonical name, kind, help text, unit).
    fn info(&self) -> CounterInfo;

    /// Evaluate the counter. With `reset`, atomically restart the
    /// counter's accumulation after reading (HPX `evaluate(reset=true)`).
    fn get_value(&self, reset: bool) -> CounterValue;

    /// Restart accumulation without reading.
    fn reset(&self);

    /// Hook invoked when the counter becomes part of the active set.
    fn start(&self) {}

    /// Hook invoked when the counter leaves the active set.
    fn stop(&self) {}

    /// Downcast hook for counters with richer payloads than a scalar
    /// (e.g. [`crate::histogram::HistogramCounter`]).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Closure type used by pull-based counters to read instrumented state.
pub type ValueFn = Arc<dyn Fn() -> i64 + Send + Sync>;

/// Closure type for (sum, count) averages.
pub type PairFn = Arc<dyn Fn() -> (u64, u64) + Send + Sync>;

/// An instantaneous gauge: every evaluation re-reads the source closure.
/// `reset` is a no-op because the quantity is not accumulated.
pub struct RawCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    read: ValueFn,
}

impl RawCounter {
    /// Build from metadata and a source closure.
    pub fn new(info: CounterInfo, clock: Arc<Clock>, read: ValueFn) -> Self {
        RawCounter { info, clock, read }
    }
}

impl Counter for RawCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, _reset: bool) -> CounterValue {
        CounterValue::new((self.read)(), self.clock.now_ns())
    }

    fn reset(&self) {}
}

/// A monotonically increasing counter over a non-decreasing source.
///
/// Reset semantics: resetting records the current source value as a
/// baseline; subsequent reads report the delta since the last reset. This
/// is what makes per-sample measurement (`evaluate`, `reset`, run,
/// `evaluate`) work while the underlying runtime keeps counting globally.
pub struct MonotonicCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    read: ValueFn,
    baseline: AtomicI64,
}

impl MonotonicCounter {
    /// Build from metadata and a non-decreasing source closure.
    pub fn new(info: CounterInfo, clock: Arc<Clock>, read: ValueFn) -> Self {
        MonotonicCounter {
            info,
            clock,
            read,
            baseline: AtomicI64::new(0),
        }
    }
}

impl Counter for MonotonicCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let raw = (self.read)();
        let base = if reset {
            self.baseline.swap(raw, Ordering::AcqRel)
        } else {
            self.baseline.load(Ordering::Acquire)
        };
        CounterValue::new(raw - base, self.clock.now_ns())
    }

    fn reset(&self) {
        self.baseline.store((self.read)(), Ordering::Release);
    }
}

/// An average maintained as a (sum, count) pair, e.g. mean task duration
/// = cumulative execution time / number of tasks.
///
/// Reset stores baselines for both components, so after a reset the counter
/// reports the average over the *new* interval only — exactly the paper's
/// per-sample protocol.
pub struct AverageCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    read: PairFn,
    /// Baseline (sum, count) of the last reset, read and replaced as one
    /// unit. A lock (not a pair of atomics): with independent swaps, two
    /// concurrent reset-reads could interleave source read A → read B →
    /// swap B → swap A, re-installing A's *older* baseline so the
    /// increments between A's and B's reads are counted twice by one
    /// caller and never again by anyone — and a mismatched (sum from A,
    /// count from B) pair corrupts the quotient besides.
    base: Mutex<(u64, u64)>,
}

impl AverageCounter {
    /// Build from metadata and a (sum, count) source closure.
    pub fn new(info: CounterInfo, clock: Arc<Clock>, read: PairFn) -> Self {
        AverageCounter {
            info,
            clock,
            read,
            base: Mutex::new((0, 0)),
        }
    }

    fn snapshot(&self, reset: bool) -> (u64, u64) {
        // The source must be read *under* the lock: serialized read-and-
        // rebase is what guarantees every stored baseline was actually
        // observed at a point no later than the next caller's read, so
        // deltas partition the source's growth exactly (no increment is
        // lost or double-counted across resets).
        let mut base = self.base.lock();
        let (sum, count) = (self.read)();
        let (bs, bc) = *base;
        if sum < bs || count < bc {
            // A non-decreasing source read under the same lock that stored
            // the baseline cannot go backwards; don't let saturating_sub
            // silently mask a broken source.
            AVERAGE_UNDERFLOWS.fetch_add(1, Ordering::Relaxed);
        }
        if reset {
            *base = (sum, count);
        }
        (sum.saturating_sub(bs), count.saturating_sub(bc))
    }
}

impl Counter for AverageCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let ts = self.clock.now_ns();
        let (sum, count) = self.snapshot(reset);
        if count == 0 {
            return CounterValue::empty(ts);
        }
        CounterValue::new((sum / count) as i64, ts).with_count(count)
    }

    fn reset(&self) {
        let mut base = self.base.lock();
        *base = (self.read)();
    }
}

/// Nanoseconds elapsed since creation or since the last reset
/// (`/runtime/uptime`).
pub struct ElapsedTimeCounter {
    info: CounterInfo,
    clock: Arc<Clock>,
    started_ns: AtomicU64,
}

impl ElapsedTimeCounter {
    /// Build with the reference point set to "now".
    pub fn new(info: CounterInfo, clock: Arc<Clock>) -> Self {
        let started = clock.now_ns();
        ElapsedTimeCounter {
            info,
            clock,
            started_ns: AtomicU64::new(started),
        }
    }
}

impl Counter for ElapsedTimeCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let now = self.clock.now_ns();
        let started = if reset {
            self.started_ns.swap(now, Ordering::AcqRel)
        } else {
            self.started_ns.load(Ordering::Acquire)
        };
        CounterValue::new(now.saturating_sub(started) as i64, now)
    }

    fn reset(&self) {
        self.started_ns
            .store(self.clock.now_ns(), Ordering::Release);
    }
}

/// A settable gauge owned by application code (`register_value`): the
/// producer stores values, consumers read them through the counter API.
pub struct ValueCell {
    info: CounterInfo,
    clock: Arc<Clock>,
    value: AtomicI64,
}

impl ValueCell {
    /// Build with an initial value of zero.
    pub fn new(info: CounterInfo, clock: Arc<Clock>) -> Self {
        ValueCell {
            info,
            clock,
            value: AtomicI64::new(0),
        }
    }

    /// Store a new value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Release);
    }

    /// Add to the current value, returning the new value.
    pub fn add(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, Ordering::AcqRel) + delta
    }
}

impl Counter for ValueCell {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let ts = self.clock.now_ns();
        let v = if reset {
            self.value.swap(0, Ordering::AcqRel)
        } else {
            self.value.load(Ordering::Acquire)
        };
        CounterValue::new(v, ts)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Release);
    }
}

/// Convenience constructor for [`CounterInfo`] used by subsystems.
pub fn info(
    name: impl Into<String>,
    kind: CounterKind,
    help: impl Into<String>,
    unit: impl Into<String>,
) -> CounterInfo {
    CounterInfo::new(name, kind, help, unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64 as TestAtomic;

    fn clock() -> Arc<Clock> {
        Arc::new(Clock::new())
    }

    fn test_info(name: &str) -> CounterInfo {
        CounterInfo::new(name, CounterKind::Raw, "test", "1")
    }

    #[test]
    fn raw_counter_reads_source() {
        let src = Arc::new(TestAtomic::new(5));
        let s2 = src.clone();
        let c = RawCounter::new(
            test_info("/t/raw"),
            clock(),
            Arc::new(move || s2.load(Ordering::Relaxed)),
        );
        assert_eq!(c.get_value(false).value, 5);
        src.store(9, Ordering::Relaxed);
        assert_eq!(c.get_value(true).value, 9); // reset is a no-op
        assert_eq!(c.get_value(false).value, 9);
    }

    #[test]
    fn monotonic_counter_reset_rebaselines() {
        let src = Arc::new(TestAtomic::new(0));
        let s2 = src.clone();
        let c = MonotonicCounter::new(
            test_info("/t/mono"),
            clock(),
            Arc::new(move || s2.load(Ordering::Relaxed)),
        );
        src.store(10, Ordering::Relaxed);
        assert_eq!(c.get_value(true).value, 10); // read + reset
        src.store(25, Ordering::Relaxed);
        assert_eq!(c.get_value(false).value, 15); // delta since reset
        c.reset();
        assert_eq!(c.get_value(false).value, 0);
    }

    #[test]
    fn average_counter_divides_deltas() {
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (sum.clone(), count.clone());
        let c = AverageCounter::new(
            test_info("/t/avg"),
            clock(),
            Arc::new(move || (s2.load(Ordering::Relaxed), c2.load(Ordering::Relaxed))),
        );
        sum.store(100, Ordering::Relaxed);
        count.store(4, Ordering::Relaxed);
        let v = c.get_value(true);
        assert_eq!(v.value, 25);
        assert_eq!(v.count, 4);
        // After reset, only new contributions count.
        sum.store(160, Ordering::Relaxed);
        count.store(6, Ordering::Relaxed);
        let v = c.get_value(false);
        assert_eq!(v.value, 30); // (160-100)/(6-4)
        assert_eq!(v.count, 2);
    }

    #[test]
    fn average_counter_concurrent_resets_conserve_counts() {
        // Regression for the lost-increment race: with the baseline held
        // as two independent atomics, resets racing each other (and the
        // source) could re-install a stale baseline, so the per-interval
        // count deltas summed across readers drifted from the true total.
        // With the serialized rebase protocol the reset-read deltas must
        // partition the source exactly: Σ deltas + final remainder ==
        // total increments, on every run.
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (s2, c2) = (sum.clone(), count.clone());
        let counter = Arc::new(AverageCounter::new(
            test_info("/t/avg"),
            clock(),
            Arc::new(move || (s2.load(Ordering::Relaxed), c2.load(Ordering::Relaxed))),
        ));
        let underflows_before = average_underflows();

        const INCREMENTS: u64 = 100_000;
        let writer = {
            let (sum, count) = (sum.clone(), count.clone());
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    // sum grows by 3 per event, count by 1 — and sum is
                    // bumped first, so a torn read sees sum ahead of
                    // count, never behind (the average stays ≥ 0).
                    sum.fetch_add(3, Ordering::Relaxed);
                    count.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    let mut harvested = 0u64;
                    for _ in 0..2_000 {
                        harvested += counter.get_value(true).count;
                    }
                    harvested
                })
            })
            .collect();
        writer.join().unwrap();
        let harvested: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        let remainder = counter.get_value(false).count;
        assert_eq!(
            harvested + remainder,
            INCREMENTS,
            "reset-read deltas must partition the source exactly"
        );
        // The underflow checks live in this same test because the detector
        // is process-global: a sibling test tripping it on purpose would
        // race these assertions.
        assert_eq!(
            average_underflows(),
            underflows_before,
            "a monotonic source must never trip the underflow detector"
        );
        // A *broken* (decreasing) source must be surfaced in the health
        // counter instead of being silently clamped by saturating_sub.
        let src = Arc::new(AtomicU64::new(100));
        let s2 = src.clone();
        let broken = AverageCounter::new(
            test_info("/t/avg-broken"),
            clock(),
            Arc::new(move || (s2.load(Ordering::Relaxed), 1)),
        );
        let _ = broken.get_value(true); // baseline (100, 1)
        src.store(40, Ordering::Relaxed); // source goes backwards
        let v = broken.get_value(false);
        assert_eq!(v.count, 0, "clamped, not wrapped");
        assert_eq!(
            average_underflows(),
            underflows_before + 1,
            "underflow recorded"
        );
    }

    #[test]
    fn average_counter_empty_interval_reports_new_data() {
        let c = AverageCounter::new(test_info("/t/avg"), clock(), Arc::new(|| (0, 0)));
        let v = c.get_value(false);
        assert_eq!(v.status, crate::value::CounterStatus::NewData);
        assert_eq!(v.count, 0);
    }

    #[test]
    fn elapsed_time_counter_grows_and_resets() {
        let c = ElapsedTimeCounter::new(test_info("/t/up"), clock());
        std::thread::sleep(std::time::Duration::from_millis(2));
        let v1 = c.get_value(false).value;
        assert!(v1 >= 1_000_000, "expected >=1ms elapsed, got {v1}ns");
        let _ = c.get_value(true);
        let v2 = c.get_value(false).value;
        assert!(v2 < v1, "reset should restart the reference point");
    }

    #[test]
    fn value_cell_set_add_reset() {
        let c = ValueCell::new(test_info("/t/cell"), clock());
        c.set(7);
        assert_eq!(c.get_value(false).value, 7);
        assert_eq!(c.add(3), 10);
        assert_eq!(c.get_value(true).value, 10); // read-and-clear
        assert_eq!(c.get_value(false).value, 0);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let c = ValueCell::new(test_info("/t/cell"), clock());
        let t1 = c.get_value(false).timestamp_ns;
        let t2 = c.get_value(false).timestamp_ns;
        assert!(t2 >= t1);
    }

    /// The TSC-drift regression: over a ≥100 ms window the clock must
    /// agree with `Instant` within tolerance — the one-shot 500 µs
    /// calibration alone does not guarantee this, the periodic
    /// cross-check does.
    #[test]
    fn clock_tracks_instant_over_long_window() {
        let c = Clock::new();
        let t0 = std::time::Instant::now();
        let n0 = c.now_ns();
        while t0.elapsed() < std::time::Duration::from_millis(110) {
            std::thread::sleep(std::time::Duration::from_millis(5));
            c.check_drift();
        }
        let clock_elapsed = c.now_ns().saturating_sub(n0) as i64;
        let instant_elapsed = t0.elapsed().as_nanos() as i64;
        let err = (clock_elapsed - instant_elapsed).abs();
        // 1% over >=100ms: far looser than the 500ppm re-derivation
        // trigger, tight enough to catch an uncorrected bad multiplier
        // (a 2x-skewed mult errs by 100%).
        assert!(
            err * 100 < instant_elapsed,
            "clock drifted {err}ns over {instant_elapsed}ns"
        );
    }

    /// Run drift checks until the clock agrees with `Instant` (the
    /// bootstrap calibration on a noisy/virtualized host can start
    /// percents off; the first checks correct it). Returns `false` when
    /// the host offers no stable TSC to test against.
    fn settle_clock(c: &Clock) -> bool {
        std::thread::sleep(std::time::Duration::from_millis(110));
        for _ in 0..8 {
            match c.check_drift() {
                ClockDrift::InTolerance(_) => return true,
                ClockDrift::Instant | ClockDrift::Disabled(_) => return false,
                ClockDrift::Recalibrated(_) | ClockDrift::Skipped => {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
            }
        }
        false
    }

    #[test]
    fn drift_check_recalibrates_a_skewed_multiplier() {
        let c = Clock::new();
        if !settle_clock(&c) {
            return; // Instant-backed or hopelessly noisy host.
        }
        // Skew the rate by +0.5%: past the 500 ppm tolerance but well
        // below the 1% strike bound. The *observed* whole-window error is
        // the skew scaled by skew-time/window-time, so leave the skew in
        // place long enough to dominate the settled prefix.
        let recals = c.recalibrations();
        c.skew_tsc_for_test(1005, 1000);
        std::thread::sleep(std::time::Duration::from_millis(100));
        let before = c.now_ns();
        let verdict = c.check_drift();
        assert!(
            matches!(verdict, ClockDrift::Recalibrated(_)),
            "a 0.5% skew must trigger re-derivation, got {verdict:?}"
        );
        assert_eq!(c.recalibrations(), recals + 1);
        assert_ne!(c.last_drift_ppm(), 0);
        // The correction is rate-only: no backwards step.
        assert!(c.now_ns() >= before, "recalibration must not step back");
        // After the re-derivation the forward rate matches Instant again.
        let t0 = std::time::Instant::now();
        let n0 = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(120));
        let clock_elapsed = c.now_ns().saturating_sub(n0) as i64;
        let instant_elapsed = t0.elapsed().as_nanos() as i64;
        let err = (clock_elapsed - instant_elapsed).abs();
        assert!(
            err * 100 < instant_elapsed,
            "post-recalibration rate still off: {err}ns over {instant_elapsed}ns"
        );
    }

    #[test]
    fn unstable_tsc_falls_back_to_instant_monotonically() {
        let c = Clock::new();
        if !c.tsc_active() {
            assert_eq!(c.check_drift(), ClockDrift::Instant);
            return;
        }
        if !settle_clock(&c) {
            return;
        }
        // First 2x skew: far beyond the 1% bound, but a single strike
        // still re-derives (indistinguishable from a bad bootstrap
        // calibration). The second consecutive one proves instability.
        c.skew_tsc_for_test(2, 1);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let verdict = c.check_drift();
        assert!(
            matches!(verdict, ClockDrift::Recalibrated(_)),
            "first strike must re-derive, got {verdict:?}"
        );
        c.skew_tsc_for_test(2, 1);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let before = c.now_ns();
        let verdict = c.check_drift();
        assert!(
            matches!(verdict, ClockDrift::Disabled(_)),
            "second consecutive strike must disable the TSC, got {verdict:?}"
        );
        assert!(!c.tsc_active(), "fallback must be permanent");
        // The switch to Instant is clamped: never a backwards step, and
        // the clock keeps moving forward afterwards.
        let after = c.now_ns();
        assert!(after >= before, "fallback stepped backwards");
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(c.now_ns() >= after);
        // Further checks are inert.
        assert!(matches!(c.check_drift(), ClockDrift::Disabled(_)));
    }

    #[test]
    fn drift_check_within_tolerance_is_a_noop() {
        let c = Clock::new();
        std::thread::sleep(std::time::Duration::from_millis(110));
        match c.check_drift() {
            ClockDrift::InTolerance(ppm) => {
                assert!(ppm.abs() <= 500, "in-tolerance verdict carries {ppm}ppm");
                assert_eq!(c.recalibrations(), 0);
            }
            ClockDrift::Instant => assert!(!c.tsc_active()),
            other => {
                // A genuinely drifting host calibration may recalibrate
                // here; that is the mechanism working, not a failure.
                assert!(matches!(other, ClockDrift::Recalibrated(_)), "{other:?}");
            }
        }
    }
}
