//! `cfg(rpx_model)` indirection for the registry's snapshot-publication
//! primitives (generation counter, snapshot `RwLock`, active-set mutex).
//!
//! Production builds re-export `std::sync::atomic` and the workspace
//! `parking_lot` shim — pure renaming, zero overhead. Under
//! `RUSTFLAGS="--cfg rpx_model"` the same names resolve to
//! `rpx_model::sync`, whose adaptive types route operations through the
//! model-checker engine when the calling thread is part of an exploration
//! (and behave like `std` otherwise, so ordinary unit tests still pass in
//! a model build).
//!
//! `mutation_armed(name)` guards deliberately-broken code paths used by
//! mutant specs; outside model builds it is a constant `false` and the
//! broken arm is dead-code-eliminated.

#[cfg(not(rpx_model))]
mod imp {
    pub use parking_lot::{Mutex, RwLock};
    pub use std::sync::atomic::{AtomicU64, Ordering};

    #[inline(always)]
    pub fn mutation_armed(_name: &str) -> bool {
        false
    }
}

#[cfg(rpx_model)]
mod imp {
    pub use rpx_model::mutation::armed as mutation_armed;
    pub use rpx_model::sync::{AtomicU64, Mutex, Ordering, RwLock};
}

pub(crate) use imp::*;
