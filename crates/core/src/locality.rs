//! Multi-locality counter access.
//!
//! In HPX every locality (process/node) hosts counters, and *any* counter
//! is addressable from anywhere because the locality is part of the name:
//! `/threads{locality#3/total}/time/average` resolves on locality 3 no
//! matter where the query originates (§IV: "any Performance Counter can be
//! accessed remotely … or locally"). This module reproduces that
//! name-routed access for multiple in-process localities (one registry
//! each — the distributed transport is out of scope for a single-node
//! reproduction, but the routing, wildcard fan-out, and aggregation
//! semantics are the ones a transport would carry).

use std::sync::Arc;

use crate::error::CounterError;
use crate::name::{CounterName, InstanceIndex};
use crate::registry::{CounterRegistry, ResolvedCounters};
use crate::value::CounterValue;

/// A set of localities, each with its own counter registry; queries route
/// by the `locality#N` component of the counter name.
pub struct DistributedRegistry {
    localities: Vec<Arc<CounterRegistry>>,
}

impl DistributedRegistry {
    /// Wrap existing per-locality registries; index = locality id.
    pub fn new(localities: Vec<Arc<CounterRegistry>>) -> Self {
        assert!(!localities.is_empty(), "need at least one locality");
        DistributedRegistry { localities }
    }

    /// Number of localities.
    pub fn localities(&self) -> usize {
        self.localities.len()
    }

    /// The registry of one locality.
    pub fn locality(&self, id: u32) -> Option<&Arc<CounterRegistry>> {
        self.localities.get(id as usize)
    }

    /// Which localities a name addresses: the concrete one, every one for
    /// `locality#*`, or locality 0 for names without an instance.
    fn route(&self, name: &CounterName) -> Result<Vec<u32>, CounterError> {
        match &name.instance {
            None => Ok(vec![0]),
            Some(inst) => {
                if inst.parent.name != "locality" {
                    return Err(CounterError::UnknownInstance(format!(
                        "`{name}`: parent instance must be locality#N"
                    )));
                }
                match inst.parent.index {
                    Some(InstanceIndex::At(l)) => {
                        if (l as usize) < self.localities.len() {
                            Ok(vec![l])
                        } else {
                            Err(CounterError::UnknownInstance(format!(
                                "`{name}`: no locality #{l} (have {})",
                                self.localities.len()
                            )))
                        }
                    }
                    Some(InstanceIndex::All) => Ok((0..self.localities.len() as u32).collect()),
                    None => Err(CounterError::UnknownInstance(format!(
                        "`{name}`: locality needs an index"
                    ))),
                }
            }
        }
    }

    /// Resolve a (possibly locality- and worker-wildcard) name to every
    /// matching counter across the addressed localities.
    pub fn get_counters(&self, name: &str) -> Result<ResolvedCounters, CounterError> {
        let parsed: CounterName = name.parse()?;
        let mut out = Vec::new();
        for l in self.route(&parsed)? {
            // Pin the locality index for this hop.
            let mut pinned = parsed.clone();
            if let Some(inst) = &mut pinned.instance {
                inst.parent.index = Some(InstanceIndex::At(l));
            }
            let reg = &self.localities[l as usize];
            out.extend(reg.get_counters(&pinned.to_string())?);
        }
        Ok(out)
    }

    /// Evaluate one (possibly fanned-out) name; returns per-counter values.
    pub fn evaluate(
        &self,
        name: &str,
        reset: bool,
    ) -> Result<Vec<(CounterName, CounterValue)>, CounterError> {
        Ok(self
            .get_counters(name)?
            .into_iter()
            .map(|(n, c)| {
                let v = c.get_value(reset);
                (n, v)
            })
            .collect())
    }

    /// Evaluate and sum the scaled values across every matching counter —
    /// the cross-locality aggregation HPX exposes via aggregating counters.
    pub fn evaluate_sum(&self, name: &str, reset: bool) -> Result<f64, CounterError> {
        Ok(self
            .evaluate(name, reset)?
            .iter()
            .map(|(_, v)| v.scaled())
            .sum())
    }

    /// Every discoverable counter name across all localities, with the
    /// locality pinned into each name.
    pub fn discover_all(&self) -> Vec<CounterName> {
        let mut out = Vec::new();
        for (l, reg) in self.localities.iter().enumerate() {
            for mut n in reg.discover_all() {
                if let Some(inst) = &mut n.instance {
                    if inst.parent.name == "locality" {
                        inst.parent.index = Some(InstanceIndex::At(l as u32));
                    }
                }
                out.push(n);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn make(n: usize) -> (DistributedRegistry, Vec<Arc<AtomicI64>>) {
        let mut regs = Vec::new();
        let mut cells = Vec::new();
        for l in 0..n {
            let reg = CounterRegistry::new();
            let v = Arc::new(AtomicI64::new((l as i64 + 1) * 10));
            let v2 = v.clone();
            // Register with a locality-aware discoverer-free simple type.
            reg.register_raw(
                "/net/bytes",
                "bytes sent",
                "1",
                Arc::new(move || v2.load(Ordering::Relaxed)),
            );
            regs.push(reg);
            cells.push(v);
        }
        (DistributedRegistry::new(regs), cells)
    }

    #[test]
    fn routes_to_named_locality() {
        let (d, _) = make(3);
        let v = d.evaluate("/net{locality#1/total}/bytes", false).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1.value, 20);
        let v = d.evaluate("/net{locality#2/total}/bytes", false).unwrap();
        assert_eq!(v[0].1.value, 30);
    }

    #[test]
    fn bare_names_go_to_locality_zero() {
        let (d, _) = make(2);
        let v = d.evaluate("/net/bytes", false).unwrap();
        assert_eq!(v[0].1.value, 10);
    }

    #[test]
    fn locality_wildcard_fans_out() {
        let (d, _) = make(4);
        let v = d.evaluate("/net{locality#*/total}/bytes", false).unwrap();
        assert_eq!(v.len(), 4);
        let sum = d
            .evaluate_sum("/net{locality#*/total}/bytes", false)
            .unwrap();
        assert_eq!(sum, (10 + 20 + 30 + 40) as f64);
    }

    #[test]
    fn unknown_locality_is_an_error() {
        let (d, _) = make(2);
        assert!(d.evaluate("/net{locality#7/total}/bytes", false).is_err());
    }

    #[test]
    fn remote_reset_protocol_works_per_locality() {
        let regs: Vec<_> = (0..2).map(|_| CounterRegistry::new()).collect();
        let cells: Vec<Arc<AtomicI64>> = (0..2).map(|_| Arc::new(AtomicI64::new(0))).collect();
        for (reg, cell) in regs.iter().zip(&cells) {
            let c = cell.clone();
            reg.register_monotonic(
                "/net/bytes",
                "h",
                "1",
                Arc::new(move || c.load(Ordering::Relaxed)),
            );
        }
        let d = DistributedRegistry::new(regs);
        cells[0].store(100, Ordering::Relaxed);
        cells[1].store(7, Ordering::Relaxed);
        // Remote evaluate-with-reset on locality 1 only.
        let v = d.evaluate("/net{locality#1/total}/bytes", true).unwrap();
        assert_eq!(v[0].1.value, 7);
        cells[1].store(12, Ordering::Relaxed);
        let v = d.evaluate("/net{locality#1/total}/bytes", false).unwrap();
        assert_eq!(v[0].1.value, 5, "locality 1 rebaselined");
        // Locality 0 untouched.
        let v = d.evaluate("/net{locality#0/total}/bytes", false).unwrap();
        assert_eq!(v[0].1.value, 100);
    }

    #[test]
    fn discover_all_pins_localities() {
        let (d, _) = make(2);
        let names = d.discover_all();
        // The simple registration advertises only the bare type path, so
        // discovery returns it once per locality (builtin self-measurement
        // counters are advertised too and are filtered out here).
        let net: Vec<_> = names.iter().filter(|n| n.object == "net").collect();
        assert_eq!(net.len(), 2);
        // The self-measurement counters (overhead/time, overhead/count,
        // health/average-underflows, clock/recalibrations, clock/drift-ppm)
        // advertise a pinned locality#0/total instance which discovery
        // re-pins per locality.
        let overhead: Vec<_> = names.iter().filter(|n| n.object == "counters").collect();
        assert_eq!(overhead.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one locality")]
    fn empty_distributed_registry_panics() {
        let _ = DistributedRegistry::new(Vec::new());
    }
}
