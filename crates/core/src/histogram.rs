//! Histogram counters: `/statistics/histogram@child,min,max,buckets`.
//!
//! Each evaluation samples the child counter and banks the value into a
//! fixed-width bucket; the counter's scalar value is the number of samples
//! collected, and the full distribution is available through
//! [`HistogramCounter::snapshot`] (HPX exposes the same through its
//! histogram counter's array payload). Used to see, e.g., the *spread* of
//! task durations rather than just the mean — fine-grained benchmarks have
//! long overhead tails that averages hide.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::counter::Counter;
use crate::derived::split_tail_args;
use crate::error::CounterError;
use crate::name::CounterName;
use crate::registry::CounterRegistry;
use crate::value::{CounterInfo, CounterKind, CounterValue};

/// A snapshot of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive lower bound of bucket 0.
    pub min: f64,
    /// Exclusive upper bound of the last regular bucket.
    pub max: f64,
    /// Per-bucket sample counts.
    pub buckets: Vec<u64>,
    /// Samples below `min`.
    pub underflow: u64,
    /// Samples at or above `max`.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Total samples (including under/overflow).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Width of one bucket, or 0.0 for a degenerate histogram (no buckets
    /// or an empty/inverted range). Registration rejects such parameters,
    /// but the snapshot struct is publicly constructible and `0/0` or
    /// `x/0` would otherwise surface as NaN/∞ and poison every downstream
    /// aggregate.
    pub fn bucket_width(&self) -> f64 {
        // `partial_cmp` (not `max > min`) so NaN bounds also fall into
        // the degenerate case instead of slipping through a negation.
        let range_ok = matches!(
            self.max.partial_cmp(&self.min),
            Some(std::cmp::Ordering::Greater)
        );
        if self.buckets.is_empty() || !range_ok {
            return 0.0;
        }
        (self.max - self.min) / self.buckets.len() as f64
    }

    /// The (lower bound, count) of the fullest bucket; `None` when the
    /// histogram is degenerate or holds no samples.
    pub fn mode(&self) -> Option<(f64, u64)> {
        if self.bucket_width() == 0.0 {
            return None;
        }
        let (i, &c) = self.buckets.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if c == 0 {
            return None;
        }
        Some((self.min + i as f64 * self.bucket_width(), c))
    }
}

struct State {
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

/// The histogram counter instance (downcast from `Arc<dyn Counter>` via
/// [`Counter::as_any`] to reach [`HistogramCounter::snapshot`]).
pub struct HistogramCounter {
    info: CounterInfo,
    child: Arc<dyn Counter>,
    min: f64,
    max: f64,
    state: Mutex<State>,
}

impl HistogramCounter {
    /// The current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.state.lock();
        HistogramSnapshot {
            min: self.min,
            max: self.max,
            buckets: s.buckets.clone(),
            underflow: s.underflow,
            overflow: s.overflow,
        }
    }
}

impl Counter for HistogramCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let sample = self.child.get_value(false);
        let mut s = self.state.lock();
        if sample.status.is_ok() && sample.count > 0 {
            let x = sample.scaled();
            // A non-finite sample compares false against both bounds and
            // would land in bucket 0 via `NaN as usize`; drop it instead.
            if x.is_finite() {
                if x < self.min {
                    s.underflow += 1;
                } else if x >= self.max {
                    s.overflow += 1;
                } else {
                    let width = (self.max - self.min) / s.buckets.len() as f64;
                    let idx = ((x - self.min) / width) as usize;
                    let idx = idx.min(s.buckets.len() - 1);
                    s.buckets[idx] += 1;
                }
            }
        }
        let total = s.buckets.iter().sum::<u64>() + s.underflow + s.overflow;
        if reset {
            s.buckets.iter_mut().for_each(|b| *b = 0);
            s.underflow = 0;
            s.overflow = 0;
        }
        CounterValue::new(total as i64, sample.timestamp_ns).with_count(total)
    }

    fn reset(&self) {
        let mut s = self.state.lock();
        s.buckets.iter_mut().for_each(|b| *b = 0);
        s.underflow = 0;
        s.overflow = 0;
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Register `/statistics/histogram` with `registry`. Called automatically
/// by [`CounterRegistry::new`].
pub fn register_histogram(registry: &Arc<CounterRegistry>) {
    let info = CounterInfo::new(
        "/statistics/histogram",
        CounterKind::AggregateStatistics,
        "bucketed distribution of samples of the child counter \
         (parameters: child,min,max,buckets)",
        "1",
    );
    registry.register_type(
        info,
        Arc::new(|name: &CounterName, reg: &Arc<CounterRegistry>| {
            let params = name.parameters.as_deref().ok_or_else(|| {
                CounterError::InvalidParameters(
                    "histogram needs parameters: child,min,max,buckets".into(),
                )
            })?;
            let (child_name, tail) = split_tail_args(params, 3);
            if tail.len() != 3 {
                return Err(CounterError::InvalidParameters(format!(
                    "histogram needs min,max,buckets after the child, got `{params}`"
                )));
            }
            let (min, max, buckets) = (tail[0], tail[1], tail[2]);
            if max <= min || buckets < 1.0 || buckets.fract() != 0.0 || buckets > 100_000.0 {
                return Err(CounterError::InvalidParameters(format!(
                    "bad histogram range/buckets: min={min} max={max} buckets={buckets}"
                )));
            }
            let parsed: CounterName = child_name.parse()?;
            let child = reg.get_counter(&parsed)?;
            let info = CounterInfo::new(
                name.canonical(),
                CounterKind::AggregateStatistics,
                "histogram of child counter samples",
                child.info().unit,
            );
            Ok(Arc::new(HistogramCounter {
                info,
                child,
                min,
                max,
                state: Mutex::new(State {
                    buckets: vec![0; buckets as usize],
                    underflow: 0,
                    overflow: 0,
                }),
            }) as Arc<dyn Counter>)
        }),
        None,
    );
}

/// Fetch the histogram snapshot behind a counter handle, if it is one.
pub fn snapshot_of(counter: &Arc<dyn Counter>) -> Option<HistogramSnapshot> {
    counter
        .as_any()
        .and_then(|a| a.downcast_ref::<HistogramCounter>())
        .map(HistogramCounter::snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn setup() -> (Arc<CounterRegistry>, Arc<AtomicI64>, Arc<dyn Counter>) {
        let reg = CounterRegistry::new();
        let src = Arc::new(AtomicI64::new(0));
        let s2 = src.clone();
        reg.register_raw(
            "/src/v",
            "h",
            "ns",
            Arc::new(move || s2.load(Ordering::Relaxed)),
        );
        let name: CounterName = "/statistics/histogram@/src/v,0,100,10".parse().unwrap();
        let c = reg.get_counter(&name).unwrap();
        (reg, src, c)
    }

    #[test]
    fn samples_land_in_buckets() {
        let (_reg, src, c) = setup();
        for x in [5, 15, 15, 95, 42] {
            src.store(x, Ordering::Relaxed);
            c.get_value(false);
        }
        let snap = snapshot_of(&c).unwrap();
        assert_eq!(snap.buckets[0], 1); // 5
        assert_eq!(snap.buckets[1], 2); // 15, 15
        assert_eq!(snap.buckets[9], 1); // 95
        assert_eq!(snap.buckets[4], 1); // 42
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.mode(), Some((10.0, 2)));
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let (_reg, src, c) = setup();
        for x in [-5, 100, 250] {
            src.store(x, Ordering::Relaxed);
            c.get_value(false);
        }
        let snap = snapshot_of(&c).unwrap();
        assert_eq!(snap.underflow, 1);
        assert_eq!(snap.overflow, 2);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 0);
    }

    #[test]
    fn scalar_value_is_sample_count_and_reset_clears() {
        let (_reg, src, c) = setup();
        src.store(50, Ordering::Relaxed);
        assert_eq!(c.get_value(false).value, 1);
        assert_eq!(c.get_value(false).value, 2);
        assert_eq!(c.get_value(true).value, 3); // read-then-clear
        assert_eq!(c.get_value(false).value, 1);
        c.reset();
        let snap = snapshot_of(&c).unwrap();
        assert_eq!(snap.total(), 0);
    }

    #[test]
    fn bad_parameters_rejected() {
        let reg = CounterRegistry::new();
        reg.register_raw("/src/v", "h", "1", Arc::new(|| 0));
        for bad in [
            "/statistics/histogram@/src/v",          // no range
            "/statistics/histogram@/src/v,10,5,4",   // max < min
            "/statistics/histogram@/src/v,0,10,0",   // zero buckets
            "/statistics/histogram@/src/v,0,10,2.5", // fractional buckets
        ] {
            assert!(reg.evaluate(bad, false).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn degenerate_snapshots_have_finite_width_and_no_mode() {
        // Empty bucket vector: width must be 0.0, not NaN (0/0).
        let empty = HistogramSnapshot {
            min: 0.0,
            max: 10.0,
            buckets: Vec::new(),
            underflow: 0,
            overflow: 0,
        };
        assert_eq!(empty.bucket_width(), 0.0);
        assert_eq!(empty.mode(), None);
        assert_eq!(empty.total(), 0);

        // min == max: width must be 0.0, not 0/n (fine) — and an inverted
        // range must not produce a negative width.
        for (min, max) in [(5.0, 5.0), (10.0, 5.0)] {
            let flat = HistogramSnapshot {
                min,
                max,
                buckets: vec![3, 1],
                underflow: 0,
                overflow: 0,
            };
            assert_eq!(flat.bucket_width(), 0.0, "min={min} max={max}");
            assert_eq!(flat.mode(), None, "degenerate range has no mode");
        }

        // NaN bounds (a hand-built snapshot) stay finite too.
        let nan = HistogramSnapshot {
            min: f64::NAN,
            max: f64::NAN,
            buckets: vec![1],
            underflow: 0,
            overflow: 0,
        };
        assert_eq!(nan.bucket_width(), 0.0);
        assert_eq!(nan.mode(), None);
    }

    #[test]
    fn healthy_snapshot_still_reports_width_and_mode() {
        let snap = HistogramSnapshot {
            min: 0.0,
            max: 100.0,
            buckets: vec![0, 7, 2, 0],
            underflow: 1,
            overflow: 0,
        };
        assert_eq!(snap.bucket_width(), 25.0);
        assert_eq!(snap.mode(), Some((25.0, 7)));
    }

    #[test]
    fn non_histogram_counters_do_not_downcast() {
        let reg = CounterRegistry::new();
        reg.register_raw("/src/v", "h", "1", Arc::new(|| 0));
        let c = reg.get_counter(&"/src/v".parse().unwrap()).unwrap();
        assert!(snapshot_of(&c).is_none());
    }
}
