//! # rpx-counters — intrinsic performance counters for task runtimes
//!
//! This crate is the primary contribution of the reproduction: an HPX-style
//! performance-counter framework that lets a runtime system and the
//! application it hosts observe *themselves* — software events (task
//! durations, scheduling overheads, queue lengths) and hardware events —
//! through one uniform, named, queryable interface, **at runtime**, without
//! external tools.
//!
//! ## Concepts
//!
//! - **Names** ([`name::CounterName`]): counters are addressed by
//!   structured names like
//!   `/threads{locality#0/worker-thread#1}/time/average`. Wildcards
//!   (`worker-thread#*`) expand to every live instance.
//! - **Counters** ([`counter::Counter`]): cheap, thread-safe, resettable
//!   value sources. Generic kinds (raw gauge, monotonic, average,
//!   elapsed-time, app-owned cells) cover almost every subsystem need.
//! - **Registry** ([`registry::CounterRegistry`]): counter *types* register
//!   a factory + discovery function; *instances* are created and cached
//!   when names are resolved. Derived counters (`/arithmetics/*`,
//!   `/statistics/*`) combine other counters.
//! - **Active set**: `add_active` + [`registry::CounterRegistry::evaluate_active_counters`] /
//!   [`registry::CounterRegistry::reset_active_counters`] implement the
//!   paper's per-sample measurement protocol.
//! - **Sampler & CLI** ([`sampler`], [`cli`]): periodic collection into
//!   CSV/JSON sinks and the `--rpx:print-counter*` command-line options.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicI64, Ordering};
//! use rpx_counters::registry::CounterRegistry;
//!
//! let registry = CounterRegistry::new();
//!
//! // A subsystem exposes its state…
//! let tasks = Arc::new(AtomicI64::new(0));
//! let t = tasks.clone();
//! registry.register_monotonic(
//!     "/threads/count/cumulative",
//!     "number of tasks executed",
//!     "1",
//!     Arc::new(move || t.load(Ordering::Relaxed)),
//! );
//!
//! // …the application measures one sample interval.
//! registry.add_active("/threads/count/cumulative").unwrap();
//! registry.reset_active_counters();
//! tasks.fetch_add(128, Ordering::Relaxed); // work happens here
//! let values = registry.evaluate_active_counters(true);
//! assert_eq!(values[0].1.value, 128);
//! ```

pub mod cli;
pub mod counter;
pub mod derived;
pub mod error;
pub mod histogram;
pub mod locality;
#[cfg(all(test, rpx_model))]
mod model_specs;
pub mod name;
mod prim;
pub mod query;
pub mod registry;
pub mod sampler;
pub mod statistics;
pub mod stats;
pub mod value;

pub use counter::{Clock, ClockDrift, Counter};
pub use error::CounterError;
pub use locality::DistributedRegistry;
pub use name::{CounterInstance, CounterName, InstanceIndex, InstancePart};
pub use query::ResolvedQuery;
pub use registry::CounterRegistry;
pub use value::{CounterInfo, CounterKind, CounterStatus, CounterValue};
