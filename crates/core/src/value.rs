//! Counter values and counter metadata.

use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// The semantic kind of a counter, mirroring HPX's counter types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// An instantaneous sample of a quantity (queue length, active threads).
    Raw,
    /// A value that only ever grows (task count, cumulative time).
    MonotonicallyIncreasing,
    /// A mean maintained as a (sum, count) pair (task duration).
    Average,
    /// A statistic aggregated over samples of another counter.
    AggregateStatistics,
    /// Time elapsed since a reference point.
    ElapsedTime,
}

/// Health of a returned counter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterStatus {
    /// The value is meaningful.
    Valid,
    /// The counter exists but has collected no data yet.
    NewData,
    /// The counter is not (or no longer) available.
    Unavailable,
    /// Evaluation failed.
    Invalid,
}

impl CounterStatus {
    /// Whether the value may be used.
    pub fn is_ok(self) -> bool {
        matches!(self, CounterStatus::Valid | CounterStatus::NewData)
    }
}

/// A single evaluation result of a performance counter.
///
/// `value` is a raw integer; the public accessor [`CounterValue::scaled`]
/// applies `scaling`/`scale_inverse` to produce the real quantity, matching
/// HPX's convention of transporting integers and scaling on the consumer
/// side (e.g. nanoseconds with `scaling = 1000` yield microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Raw integer payload.
    pub value: i64,
    /// Scale divisor (or multiplier when `scale_inverse`); 1 = unscaled.
    pub scaling: i64,
    /// If true, multiply by `scaling` instead of dividing.
    pub scale_inverse: bool,
    /// Health of the evaluation.
    pub status: CounterStatus,
    /// Nanoseconds since the owning registry's epoch at evaluation time.
    pub timestamp_ns: u64,
    /// Number of underlying samples folded into the value (1 for raw reads).
    pub count: u64,
}

impl CounterValue {
    /// A valid value with no scaling.
    pub fn new(value: i64, timestamp_ns: u64) -> Self {
        CounterValue {
            value,
            scaling: 1,
            scale_inverse: false,
            status: CounterStatus::Valid,
            timestamp_ns,
            count: 1,
        }
    }

    /// A valid value with a scale divisor.
    pub fn scaled_by(value: i64, scaling: i64, timestamp_ns: u64) -> Self {
        CounterValue {
            scaling,
            ..CounterValue::new(value, timestamp_ns)
        }
    }

    /// A placeholder for counters that have no data yet.
    pub fn empty(timestamp_ns: u64) -> Self {
        CounterValue {
            value: 0,
            scaling: 1,
            scale_inverse: false,
            status: CounterStatus::NewData,
            timestamp_ns,
            count: 0,
        }
    }

    /// An unavailable/invalid marker.
    pub fn unavailable(timestamp_ns: u64) -> Self {
        CounterValue {
            status: CounterStatus::Unavailable,
            ..CounterValue::empty(timestamp_ns)
        }
    }

    /// The scaled value as a float: `value / scaling` (or `value * scaling`
    /// when `scale_inverse` is set).
    pub fn scaled(&self) -> f64 {
        if self.scaling == 0 || self.scaling == 1 {
            if self.scale_inverse && self.scaling == 0 {
                return 0.0;
            }
            return self.value as f64;
        }
        if self.scale_inverse {
            self.value as f64 * self.scaling as f64
        } else {
            self.value as f64 / self.scaling as f64
        }
    }

    /// Attach a sample count.
    pub fn with_count(mut self, count: u64) -> Self {
        self.count = count;
        self
    }
}

/// Static metadata describing a counter type or instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterInfo {
    /// Full counter name (type path for type info, canonical for instances).
    pub name: String,
    /// Semantic kind.
    pub kind: CounterKind,
    /// Human-readable description.
    pub help: String,
    /// Unit of measure of the *scaled* value, e.g. `ns`, `0.1%`, `1/s`.
    pub unit: String,
    /// Interface version.
    pub version: u32,
}

impl CounterInfo {
    /// Metadata with the default version.
    pub fn new(
        name: impl Into<String>,
        kind: CounterKind,
        help: impl Into<String>,
        unit: impl Into<String>,
    ) -> Self {
        CounterInfo {
            name: name.into(),
            kind,
            help: help.into(),
            unit: unit.into(),
            version: 1,
        }
    }
}

/// Wall-clock time in nanoseconds since the Unix epoch; used only for
/// display, never for measuring intervals.
pub fn wall_clock_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_divides() {
        let v = CounterValue::scaled_by(1500, 1000, 0);
        assert!((v.scaled() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scaled_inverse_multiplies() {
        let mut v = CounterValue::scaled_by(3, 1000, 0);
        v.scale_inverse = true;
        assert!((v.scaled() - 3000.0).abs() < 1e-12);
    }

    #[test]
    fn unit_scaling_is_identity() {
        let v = CounterValue::new(42, 7);
        assert_eq!(v.scaled(), 42.0);
        assert_eq!(v.timestamp_ns, 7);
        assert!(v.status.is_ok());
    }

    #[test]
    fn zero_scaling_does_not_divide_by_zero() {
        let v = CounterValue::scaled_by(42, 0, 0);
        assert_eq!(v.scaled(), 42.0);
    }

    #[test]
    fn empty_value_reports_new_data() {
        let v = CounterValue::empty(0);
        assert_eq!(v.status, CounterStatus::NewData);
        assert!(v.status.is_ok());
        assert_eq!(v.count, 0);
    }

    #[test]
    fn unavailable_is_not_ok() {
        assert!(!CounterValue::unavailable(0).status.is_ok());
    }

    #[test]
    fn value_serializes_to_json() {
        let v = CounterValue::new(5, 1);
        let s = serde_json::to_string(&v).unwrap();
        let back: CounterValue = serde_json::from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
