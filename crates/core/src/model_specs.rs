//! Model-checked spec for the registry's snapshot-publication protocol
//! (stamp-before-expand vs. concurrent generation bump), with a paired
//! deliberately-broken mutant proving the checker catches the stale-
//! snapshot bug.
//!
//! Compiled only under `RUSTFLAGS="--cfg rpx_model"`; run with
//! `RUSTFLAGS="--cfg rpx_model" cargo test -p rpx-counters model_`.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard, OnceLock};

use rpx_model::{check, check_expect_failure, mutation, thread, Config};

use crate::counter::{Counter, RawCounter};
use crate::name::{CounterInstance, CounterName};
use crate::registry::CounterRegistry;
use crate::value::{CounterInfo, CounterKind};

/// Serializes the specs in this file: mutants arm a process-global
/// registry, so an armed mutation must never overlap another spec's
/// exploration.
fn serial() -> MutexGuard<'static, ()> {
    static M: OnceLock<StdMutex<()>> = OnceLock::new();
    M.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn cfg() -> Config {
    Config {
        max_executions: 1500,
        random_walks: 400,
        ..Config::default()
    }
}

/// `/threads/count` with a discoverer enumerating `workers` instances
/// (the same growable-topology harness the registry unit tests use).
fn register_growable(reg: &Arc<CounterRegistry>, count: Arc<AtomicI64>) {
    let info = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
    let clock = reg.clock();
    reg.register_type(
        info,
        Arc::new(move |name, _| {
            let mut i = CounterInfo::new("/threads/count", CounterKind::Raw, "h", "1");
            i.name = name.canonical();
            Ok(Arc::new(RawCounter::new(i, clock.clone(), Arc::new(|| 1))) as Arc<dyn Counter>)
        }),
        Some(Arc::new(move |f: &mut dyn FnMut(CounterName)| {
            for w in 0..count.load(Ordering::Relaxed) {
                f(CounterName::new("threads", "count")
                    .with_instance(CounterInstance::worker(0, w as u32)));
            }
        })),
    );
}

/// Protocol 5 — snapshot publish vs. topology-generation bump: a rebuild
/// racing a concurrent instance change + `bump_generation` may publish a
/// snapshot that misses the change, but only stamped with the *pre-bump*
/// generation — so the next reader re-expands and the change is never
/// lost. After joining the bumping thread, the active set must contain
/// the new instance.
fn registry_snapshot_vs_bump() {
    let reg = CounterRegistry::new();
    let workers = Arc::new(AtomicI64::new(1));
    register_growable(&reg, workers.clone());
    reg.add_active("/threads{locality#0/worker-thread#*}/count")
        .unwrap();
    // Force the racing `active_snapshot` below into a rebuild.
    reg.bump_generation();
    let (r2, w2) = (reg.clone(), workers.clone());
    let bumper = thread::spawn(move || {
        w2.store(2, Ordering::Relaxed);
        r2.bump_generation();
    });
    // Racing rebuild: may expand before or after the topology change.
    let _ = reg.active_snapshot();
    bumper.join().unwrap();
    let names = reg.active_names();
    assert!(
        names.iter().any(|n| n.contains("worker-thread#1")),
        "topology change lost after bump: {names:?}"
    );
}

#[test]
fn model_registry_snapshot_vs_generation_bump() {
    let _g = serial();
    mutation::disarm_all();
    check(
        "model_registry_snapshot_vs_generation_bump",
        cfg(),
        registry_snapshot_vs_bump,
    );
}

#[test]
fn model_registry_stamp_after_expand_mutant_is_caught() {
    let _g = serial();
    mutation::disarm_all();
    mutation::arm("registry-stamp-after-expand");
    let failure = check_expect_failure(
        "model_registry_stamp_after_expand_mutant_is_caught",
        cfg(),
        registry_snapshot_vs_bump,
    );
    mutation::disarm_all();
    assert!(
        failure.message.contains("topology change lost"),
        "expected a lost topology change, got: {}",
        failure.message
    );
}
