//! Command-line convenience layer, mirroring HPX's counter-related options:
//!
//! - `--rpx:print-counter=<name>` (repeatable, wildcards allowed)
//! - `--rpx:print-counter-interval=<ms>` (0 = only at shutdown)
//! - `--rpx:print-counter-destination=<path|->` (CSV file or stdout)
//! - `--rpx:print-counter-format=<csv|json>`
//! - `--rpx:list-counters` / `--rpx:list-counter-infos`
//! - `--rpx:reset-counters` (reset on every read)
//!
//! Unknown arguments pass through untouched so applications can layer their
//! own parsing on top, exactly like HPX applications do.

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;
use std::time::Duration;

use crate::error::CounterError;
use crate::query::ResolvedQuery;
use crate::registry::CounterRegistry;
use crate::sampler::{CsvSink, JsonSink, SampleSink, Sampler, SamplerConfig};

/// Output format for `--rpx:print-counter-destination`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterFormat {
    /// Comma-separated values (default).
    #[default]
    Csv,
    /// One JSON object per line.
    Json,
}

/// Parsed counter-related command-line options.
#[derive(Debug, Clone, Default)]
pub struct CounterCliOptions {
    /// Counters to print (wildcards allowed).
    pub print_counters: Vec<String>,
    /// Periodic printing interval; `None` = once at shutdown only.
    pub interval: Option<Duration>,
    /// Destination path; `None` or `-` = stdout.
    pub destination: Option<String>,
    /// Output format.
    pub format: CounterFormat,
    /// List available counter names and exit.
    pub list_counters: bool,
    /// List counter metadata (name, kind, unit, help) and exit.
    pub list_counter_infos: bool,
    /// Reset counters on every read (per-interval deltas).
    pub reset_on_read: bool,
}

impl CounterCliOptions {
    /// Parse `--rpx:*` options out of `args`, returning the parsed options
    /// and the remaining (unconsumed) arguments.
    pub fn parse<I, S>(args: I) -> Result<(Self, Vec<String>), CounterError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = CounterCliOptions::default();
        let mut rest = Vec::new();
        for arg in args {
            let a = arg.as_ref();
            if let Some(v) = a.strip_prefix("--rpx:print-counter=") {
                opts.print_counters.push(v.to_owned());
            } else if let Some(v) = a.strip_prefix("--rpx:print-counter-interval=") {
                let ms: u64 = v.parse().map_err(|_| {
                    CounterError::InvalidParameters(format!("bad interval `{v}` (milliseconds)"))
                })?;
                opts.interval = if ms == 0 {
                    None
                } else {
                    Some(Duration::from_millis(ms))
                };
            } else if let Some(v) = a.strip_prefix("--rpx:print-counter-destination=") {
                opts.destination = if v == "-" { None } else { Some(v.to_owned()) };
            } else if let Some(v) = a.strip_prefix("--rpx:print-counter-format=") {
                opts.format = match v {
                    "csv" => CounterFormat::Csv,
                    "json" => CounterFormat::Json,
                    other => {
                        return Err(CounterError::InvalidParameters(format!(
                            "unknown counter format `{other}` (expected csv or json)"
                        )))
                    }
                };
            } else if a == "--rpx:list-counters" {
                opts.list_counters = true;
            } else if a == "--rpx:list-counter-infos" {
                opts.list_counter_infos = true;
            } else if a == "--rpx:reset-counters" {
                opts.reset_on_read = true;
            } else {
                rest.push(a.to_owned());
            }
        }
        Ok((opts, rest))
    }

    /// Whether any counter output was requested.
    pub fn wants_output(&self) -> bool {
        !self.print_counters.is_empty() || self.list_counters || self.list_counter_infos
    }
}

/// Render the list of discoverable counter names (one per line).
pub fn render_counter_list(registry: &CounterRegistry) -> String {
    let mut names: Vec<String> = registry
        .discover_all()
        .iter()
        .map(|n| n.to_string())
        .collect();
    names.sort();
    let mut out = String::new();
    for n in names {
        let _ = writeln!(out, "{n}");
    }
    out
}

/// Render the counter-type metadata table.
pub fn render_counter_infos(registry: &CounterRegistry) -> String {
    let mut out = String::new();
    for info in registry.counter_types() {
        let _ = writeln!(
            out,
            "{}\t{:?}\t[{}]\t{}",
            info.name, info.kind, info.unit, info.help
        );
    }
    out
}

/// Everything needed to honour the parsed options during and after a run.
pub struct CounterCli {
    registry: Arc<CounterRegistry>,
    options: CounterCliOptions,
    sampler: Option<Sampler>,
}

impl CounterCli {
    /// Apply the options: print listings, start the periodic sampler if an
    /// interval was configured. Returns the driver that must be kept alive
    /// for the duration of the run.
    pub fn start(
        registry: Arc<CounterRegistry>,
        options: CounterCliOptions,
    ) -> Result<Self, CounterError> {
        if options.list_counters {
            print!("{}", render_counter_list(&registry));
        }
        if options.list_counter_infos {
            print!("{}", render_counter_infos(&registry));
        }
        let sampler = match (&options.interval, options.print_counters.is_empty()) {
            (Some(interval), false) => {
                let sink = make_sink(&options)?;
                let mut config = SamplerConfig::new(options.print_counters.clone(), *interval);
                config.reset_on_read = options.reset_on_read;
                Some(Sampler::start(&registry, config, sink)?)
            }
            _ => None,
        };
        Ok(CounterCli {
            registry,
            options,
            sampler,
        })
    }

    /// Finish the run: stop the sampler, or — when no interval was given —
    /// print the final values once (HPX prints at shutdown by default).
    pub fn finish(mut self) -> Result<(), CounterError> {
        if let Some(s) = self.sampler.take() {
            s.stop();
            return Ok(());
        }
        if self.options.print_counters.is_empty() {
            return Ok(());
        }
        let mut sink = make_sink(&self.options)?;
        // Resolve once through the handle-cached path; the final read is
        // lock-free and accounted in the overhead counters like any other
        // batch.
        let query = ResolvedQuery::resolve(&self.registry, &self.options.print_counters)?;
        let names = query.names();
        let readings = query.evaluate(false);
        sink.begin(&names);
        sink.record(&crate::sampler::SampleBatch {
            sequence: 0,
            timestamp_ns: self.registry.clock().now_ns(),
            readings,
        });
        sink.finish();
        Ok(())
    }
}

fn make_sink(options: &CounterCliOptions) -> Result<Box<dyn SampleSink>, CounterError> {
    let sink: Box<dyn SampleSink> = match (&options.destination, options.format) {
        (None, CounterFormat::Csv) => Box::new(CsvSink::new(std::io::stdout())),
        (None, CounterFormat::Json) => Box::new(JsonSink::new(std::io::stdout())),
        (Some(path), format) => {
            let file = File::create(path).map_err(|e| {
                CounterError::CreationFailed(format!("cannot create `{path}`: {e}"))
            })?;
            match format {
                CounterFormat::Csv => Box::new(CsvSink::new(BufWriter::new(file))),
                CounterFormat::Json => Box::new(JsonSink::new(BufWriter::new(file))),
            }
        }
    };
    Ok(sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_options_and_passes_rest() {
        let (opts, rest) = CounterCliOptions::parse([
            "--rpx:print-counter=/threads{locality#0/total}/time/average",
            "--rpx:print-counter=/threads{locality#0/total}/count/cumulative",
            "--rpx:print-counter-interval=100",
            "--rpx:print-counter-destination=out.csv",
            "--rpx:print-counter-format=json",
            "--rpx:reset-counters",
            "--app-arg",
            "positional",
        ])
        .unwrap();
        assert_eq!(opts.print_counters.len(), 2);
        assert_eq!(opts.interval, Some(Duration::from_millis(100)));
        assert_eq!(opts.destination.as_deref(), Some("out.csv"));
        assert_eq!(opts.format, CounterFormat::Json);
        assert!(opts.reset_on_read);
        assert_eq!(rest, vec!["--app-arg", "positional"]);
    }

    #[test]
    fn zero_interval_means_shutdown_only() {
        let (opts, _) = CounterCliOptions::parse(["--rpx:print-counter-interval=0"]).unwrap();
        assert_eq!(opts.interval, None);
    }

    #[test]
    fn stdout_destination_dash() {
        let (opts, _) = CounterCliOptions::parse(["--rpx:print-counter-destination=-"]).unwrap();
        assert_eq!(opts.destination, None);
    }

    #[test]
    fn bad_interval_rejected() {
        assert!(CounterCliOptions::parse(["--rpx:print-counter-interval=abc"]).is_err());
        assert!(CounterCliOptions::parse(["--rpx:print-counter-format=xml"]).is_err());
    }

    #[test]
    fn list_flags() {
        let (opts, _) =
            CounterCliOptions::parse(["--rpx:list-counters", "--rpx:list-counter-infos"]).unwrap();
        assert!(opts.list_counters);
        assert!(opts.list_counter_infos);
        assert!(opts.wants_output());
    }

    #[test]
    fn render_listing_contains_registered_counters() {
        let reg = CounterRegistry::new();
        reg.register_raw("/demo/value", "a demo", "1", Arc::new(|| 1));
        let listing = render_counter_list(&reg);
        assert!(listing.contains("/demo/value"));
        let infos = render_counter_infos(&reg);
        assert!(infos.contains("/demo/value"));
        assert!(infos.contains("a demo"));
    }

    #[test]
    fn cli_shutdown_print_to_file() {
        let reg = CounterRegistry::new();
        reg.register_raw("/demo/value", "h", "1", Arc::new(|| 41));
        let dir = std::env::temp_dir().join(format!("rpx-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("counters.csv");
        let (opts, _) = CounterCliOptions::parse([
            "--rpx:print-counter=/demo/value".to_string(),
            format!("--rpx:print-counter-destination={}", path.display()),
        ])
        .unwrap();
        let cli = CounterCli::start(reg, opts).unwrap();
        cli.finish().unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("/demo/value"));
        assert!(contents.contains(",41"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
