//! Statistics counters: `/statistics/{average,rolling_average,median,
//! stddev,min,max}@child[,window]`.
//!
//! A statistics counter samples its child counter on every evaluation and
//! reports a statistic over the collected samples. `average` and `stddev`
//! aggregate over the full history since the last reset; the `rolling_*`
//! and order statistics (`median`, `min`, `max`) use a sliding window whose
//! size is the optional trailing numeric parameter (default 64 samples).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::counter::Counter;
use crate::derived::split_tail_args;
use crate::error::CounterError;
use crate::name::CounterName;
use crate::registry::CounterRegistry;
use crate::stats::{RunningStats, SampleWindow};
use crate::value::{CounterInfo, CounterKind, CounterStatus, CounterValue};

const DEFAULT_WINDOW: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stat {
    Average,
    RollingAverage,
    Median,
    Stddev,
    Min,
    Max,
}

impl Stat {
    fn from_counter(name: &str) -> Option<Stat> {
        match name {
            "average" => Some(Stat::Average),
            "rolling_average" => Some(Stat::RollingAverage),
            "median" => Some(Stat::Median),
            "stddev" => Some(Stat::Stddev),
            "min" => Some(Stat::Min),
            "max" => Some(Stat::Max),
            _ => None,
        }
    }

    fn all() -> [&'static str; 6] {
        [
            "average",
            "rolling_average",
            "median",
            "stddev",
            "min",
            "max",
        ]
    }
}

struct State {
    running: RunningStats,
    window: SampleWindow,
}

struct StatisticsCounter {
    info: CounterInfo,
    stat: Stat,
    child: Arc<dyn Counter>,
    state: Mutex<State>,
}

impl StatisticsCounter {
    fn statistic(&self, state: &State) -> f64 {
        match self.stat {
            Stat::Average => state.running.mean(),
            Stat::Stddev => state.running.stddev(),
            Stat::RollingAverage => state.window.mean(),
            Stat::Median => state.window.median(),
            Stat::Min => state.window.min(),
            Stat::Max => state.window.max(),
        }
    }
}

impl Counter for StatisticsCounter {
    fn info(&self) -> CounterInfo {
        self.info.clone()
    }

    fn get_value(&self, reset: bool) -> CounterValue {
        let sample = self.child.get_value(false);
        let mut state = self.state.lock();
        if sample.status.is_ok() && sample.status != CounterStatus::NewData {
            let x = sample.scaled();
            state.running.add(x);
            state.window.push(x);
        }
        let n = state.running.count();
        if n == 0 {
            return CounterValue::empty(sample.timestamp_ns);
        }
        let value = self.statistic(&state);
        if reset {
            state.running.reset();
            state.window.reset();
        }
        statistic_to_value(value, sample.timestamp_ns, n)
    }

    fn reset(&self) {
        let mut state = self.state.lock();
        state.running.reset();
        state.window.reset();
    }
}

/// Convert a computed statistic into a transportable [`CounterValue`].
///
/// NaN/∞ (e.g. a degenerate window) must not masquerade as a valid 0 —
/// `f64::round() as i64` saturates NaN to 0 — so non-finite statistics
/// report "no data". Fractional statistics (sub-unit averages of rate-like
/// children) are carried as milli-units through the value's scaling fields
/// instead of being rounded away; integral statistics stay unscaled so raw
/// `value` consumers see the exact integer.
fn statistic_to_value(value: f64, timestamp_ns: u64, n: u64) -> CounterValue {
    if !value.is_finite() {
        return CounterValue::empty(timestamp_ns);
    }
    if value.fract() == 0.0 {
        CounterValue::new(value as i64, timestamp_ns).with_count(n)
    } else {
        CounterValue::scaled_by((value * 1000.0).round() as i64, 1000, timestamp_ns).with_count(n)
    }
}

/// Register the `/statistics/*` counter types with `registry`.
/// Called automatically by [`CounterRegistry::new`].
pub fn register_statistics(registry: &Arc<CounterRegistry>) {
    for stat_name in Stat::all() {
        let type_path = format!("/statistics/{stat_name}");
        let info = CounterInfo::new(
            &type_path,
            CounterKind::AggregateStatistics,
            format!("{stat_name} over samples of the child counter named in the parameters"),
            "1",
        );
        registry.register_type(
            info,
            Arc::new(move |name: &CounterName, reg: &Arc<CounterRegistry>| {
                let stat = Stat::from_counter(&name.counter).ok_or_else(|| {
                    CounterError::InvalidParameters(format!("unknown statistic `{}`", name.counter))
                })?;
                let params = name.parameters.as_deref().ok_or_else(|| {
                    CounterError::InvalidParameters(
                        "statistics counters need a child counter as parameter".into(),
                    )
                })?;
                let (child_name, tail) = split_tail_args(params, 1);
                let window = tail
                    .first()
                    .map(|w| {
                        if *w >= 1.0 && w.fract() == 0.0 {
                            Ok(*w as usize)
                        } else {
                            Err(CounterError::InvalidParameters(format!(
                                "window size must be a positive integer, got {w}"
                            )))
                        }
                    })
                    .transpose()?
                    .unwrap_or(DEFAULT_WINDOW);
                let parsed: CounterName = child_name.parse()?;
                if parsed.has_wildcard() {
                    return Err(CounterError::InvalidParameters(
                        "statistics counters take a single concrete child".into(),
                    ));
                }
                let child = reg.get_counter(&parsed)?;
                let info = CounterInfo::new(
                    name.canonical(),
                    CounterKind::AggregateStatistics,
                    "derived statistics counter",
                    child.info().unit,
                );
                Ok(Arc::new(StatisticsCounter {
                    info,
                    stat,
                    child,
                    state: Mutex::new(State {
                        running: RunningStats::new(),
                        window: SampleWindow::new(window),
                    }),
                }) as Arc<dyn Counter>)
            }),
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn reg_with_source() -> (Arc<CounterRegistry>, Arc<AtomicI64>) {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicI64::new(0));
        let v2 = v.clone();
        reg.register_raw(
            "/src/value",
            "h",
            "ns",
            Arc::new(move || v2.load(Ordering::Relaxed)),
        );
        (reg, v)
    }

    fn sample_sequence(
        reg: &Arc<CounterRegistry>,
        src: &AtomicI64,
        counter: &str,
        samples: &[i64],
    ) -> i64 {
        let name: CounterName = counter.parse().unwrap();
        let c = reg.get_counter(&name).unwrap();
        let mut last = 0;
        for &s in samples {
            src.store(s, Ordering::Relaxed);
            last = c.get_value(false).value;
        }
        last
    }

    #[test]
    fn average_accumulates_full_history() {
        let (reg, src) = reg_with_source();
        let v = sample_sequence(&reg, &src, "/statistics/average@/src/value", &[10, 20, 30]);
        assert_eq!(v, 20);
    }

    #[test]
    fn rolling_average_uses_window() {
        let (reg, src) = reg_with_source();
        // Window of 2: after samples 10, 20, 30 the window holds {20, 30}.
        let v = sample_sequence(
            &reg,
            &src,
            "/statistics/rolling_average@/src/value,2",
            &[10, 20, 30],
        );
        assert_eq!(v, 25);
    }

    #[test]
    fn median_min_max() {
        let (reg, src) = reg_with_source();
        let v = sample_sequence(&reg, &src, "/statistics/median@/src/value,5", &[5, 1, 9]);
        assert_eq!(v, 5);
        let v = sample_sequence(&reg, &src, "/statistics/min@/src/value,5", &[5, 1, 9]);
        assert_eq!(v, 1);
        let v = sample_sequence(&reg, &src, "/statistics/max@/src/value,5", &[5, 1, 9]);
        assert_eq!(v, 9);
    }

    #[test]
    fn stddev_matches_population_formula() {
        let (reg, src) = reg_with_source();
        // Samples 2, 4, 4, 4, 5, 5, 7, 9 have population stddev exactly 2.
        let v = sample_sequence(
            &reg,
            &src,
            "/statistics/stddev@/src/value",
            &[2, 4, 4, 4, 5, 5, 7, 9],
        );
        assert_eq!(v, 2);
    }

    #[test]
    fn evaluate_with_reset_clears_history() {
        let (reg, src) = reg_with_source();
        let name: CounterName = "/statistics/average@/src/value".parse().unwrap();
        let c = reg.get_counter(&name).unwrap();
        src.store(100, Ordering::Relaxed);
        assert_eq!(c.get_value(true).value, 100);
        src.store(10, Ordering::Relaxed);
        // History was cleared, so the next average sees only the new sample.
        assert_eq!(c.get_value(false).value, 10);
    }

    #[test]
    fn no_samples_reports_new_data() {
        let reg = CounterRegistry::new();
        // A child whose value is NewData: an average counter over (0, 0).
        reg.register_average("/src/avg", "h", "ns", Arc::new(|| (0, 0)));
        let name: CounterName = "/statistics/average@/src/avg".parse().unwrap();
        let c = reg.get_counter(&name).unwrap();
        let v = c.get_value(false);
        assert_eq!(v.status, CounterStatus::NewData);
    }

    #[test]
    fn bad_window_rejected() {
        let (reg, _src) = reg_with_source();
        assert!(reg
            .evaluate("/statistics/median@/src/value,0", false)
            .is_err());
        assert!(reg
            .evaluate("/statistics/median@/src/value,2.5", false)
            .is_err());
    }

    #[test]
    fn missing_parameters_rejected() {
        let reg = CounterRegistry::new();
        assert!(matches!(
            reg.evaluate("/statistics/average", false),
            Err(CounterError::InvalidParameters(_))
        ));
    }

    #[test]
    fn fractional_statistics_keep_sub_unit_precision() {
        let (reg, src) = reg_with_source();
        let name: CounterName = "/statistics/average@/src/value".parse().unwrap();
        let c = reg.get_counter(&name).unwrap();
        src.store(10, Ordering::Relaxed);
        let _ = c.get_value(false);
        src.store(15, Ordering::Relaxed);
        let v = c.get_value(false);
        // Mean of {10, 15} is 12.5 — transported as 12500/1000, not
        // rounded to 12 or 13.
        assert_eq!(v.scaled(), 12.5);
        assert_eq!(v.value, 12500);
        assert_eq!(v.scaling, 1000);
        assert_eq!(v.count, 2);
    }

    #[test]
    fn non_finite_statistics_report_no_data() {
        let nan = statistic_to_value(f64::NAN, 7, 3);
        assert_eq!(nan.status, CounterStatus::NewData);
        assert_eq!(nan.value, 0);
        assert_eq!(nan.count, 0);
        let inf = statistic_to_value(f64::INFINITY, 7, 3);
        assert_eq!(inf.status, CounterStatus::NewData);
        // Integral statistics stay raw; fractional ones scale.
        assert_eq!(statistic_to_value(20.0, 0, 1).value, 20);
        assert_eq!(statistic_to_value(20.0, 0, 1).scaling, 1);
    }

    #[test]
    fn statistics_over_statistics_compose() {
        let (reg, src) = reg_with_source();
        // max of rolling averages — exercises nested parameter parsing:
        // the outer counter takes the trailing `5`, the inner keeps `,2`.
        let name = "/statistics/max@/statistics/rolling_average@/src/value,2,5";
        let v = sample_sequence(&reg, &src, name, &[10, 20, 30]);
        // Outer evaluations sample the inner counter, which itself samples
        // the source: inner rolling(2) sees 10 → 10; 20 → 15; 30 → 25.
        // Outer max over {10, 15, 25} = 25.
        assert_eq!(v, 25);
    }
}
