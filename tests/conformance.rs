//! Counter-semantics conformance: benchmark runs whose counter values are
//! known in *closed form*, so the assertions are exact equalities rather
//! than "looks plausible" bounds.
//!
//! The task-count oracles follow from the spawn structure of the Inncabs
//! kernels:
//!
//! - `fib(n)` spawns both recursive calls, so the call tree has
//!   `C(n) = 2*fib(n+1) - 1` nodes and every node except the root arrives
//!   via `spawn` — exactly `2*fib(n+1) - 2` tasks.
//! - `nqueens(n)` spawns one task per *valid* partial placement, so the
//!   task count equals the size of the pruned search tree minus the root,
//!   enumerable sequentially.
//!
//! The time-balance test checks the accounting identity the paper's
//! idle-rate counter rests on: every nanosecond of a worker's life is
//! attributed to exactly one of {exec, overhead, idle}.

use rpx::inncabs::spawner::RpxSpawner;
use rpx::inncabs::{fib, nqueens};
use rpx::runtime::{Runtime, RuntimeConfig};

const TOTAL_COUNT: &str = "/threads{locality#0/total}/count/cumulative";

fn fib_u64(n: u64) -> u64 {
    (0..n).fold((0u64, 1u64), |(a, b), _| (b, a + b)).0
}

/// Number of tasks a parallel `fib(n)` run spawns: every call with
/// `n >= 2` spawns two children; only the root is not itself a task.
fn fib_task_oracle(n: u64) -> i64 {
    (2 * fib_u64(n + 1) - 2) as i64
}

/// Number of tasks a parallel `nqueens(n)` run spawns: one per valid
/// partial placement (the pruned search tree minus its root).
fn nqueens_task_oracle(n: usize) -> i64 {
    fn safe(placed: &[usize], col: usize) -> bool {
        let row = placed.len();
        placed
            .iter()
            .enumerate()
            .all(|(r, &c)| c != col && c + row != col + r && c + r != col + row)
    }
    fn count(n: usize, placed: &mut Vec<usize>) -> i64 {
        if placed.len() == n {
            return 0;
        }
        let mut total = 0;
        for c in 0..n {
            if safe(placed, c) {
                placed.push(c);
                total += 1 + count(n, placed);
                placed.pop();
            }
        }
        total
    }
    count(n, &mut Vec::new())
}

#[test]
fn fib_task_count_matches_closed_form() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let sp = RpxSpawner::new(rt.handle());

    let input = fib::FibInput { n: 12 };
    let result = fib::run(&sp, input);
    rt.wait_idle();

    assert_eq!(result, fib::run_serial(input));
    // fib(13) = 233, so the run must have executed exactly 464 tasks.
    let expected = fib_task_oracle(12);
    assert_eq!(expected, 464);
    let tasks = reg.evaluate(TOTAL_COUNT, false).unwrap().value;
    assert_eq!(
        tasks, expected,
        "fib(12) must execute exactly 2*fib(13)-2 tasks"
    );
    rt.shutdown();
}

#[test]
fn nqueens_task_count_matches_search_tree_oracle() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let sp = RpxSpawner::new(rt.handle());

    let input = nqueens::NQueensInput { n: 6 };
    let solutions = nqueens::run(&sp, input);
    rt.wait_idle();

    assert_eq!(solutions, 4, "6-queens has exactly 4 solutions");
    let expected = nqueens_task_oracle(6);
    let tasks = reg.evaluate(TOTAL_COUNT, false).unwrap().value;
    assert_eq!(
        tasks, expected,
        "nqueens(6) must spawn one task per valid partial placement"
    );
    rt.shutdown();
}

#[test]
fn exec_overhead_idle_account_for_worker_wall_time() {
    const WORKERS: usize = 2;
    let t0 = std::time::Instant::now();
    let rt = Runtime::new(RuntimeConfig::with_workers(WORKERS));
    let reg = rt.registry();

    // Spin tasks long enough that the window dwarfs startup slack, then
    // wait for idle *before* collecting futures so the main thread never
    // help-executes (helper execution is attributed to worker 0 and would
    // inflate the accounted total past the workers' own wall time).
    let futures: Vec<_> = (0..400)
        .map(|_| {
            rt.spawn(|| {
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_add(i).rotate_left(3);
                }
                std::hint::black_box(acc);
            })
        })
        .collect();
    rt.wait_idle();
    for f in futures {
        f.get();
    }

    let exec = reg
        .evaluate("/threads{locality#0/total}/time/cumulative", false)
        .unwrap()
        .value;
    let overhead = reg
        .evaluate("/threads{locality#0/total}/time/cumulative-overhead", false)
        .unwrap()
        .value;
    // Idle time is exposed as a rate in 0.01% units (HPX convention):
    // rate = idle / (idle + busy) * 10_000. Invert it to recover idle.
    let rate = reg
        .evaluate("/threads{locality#0/total}/idle-rate", false)
        .unwrap()
        .value;
    let wall = t0.elapsed().as_nanos() as i64;
    rt.shutdown();

    assert!(exec > 0, "spin tasks must accrue execution time");
    assert!((0..10_000).contains(&rate), "idle-rate {rate} out of range");
    let busy = exec + overhead;
    let idle = (busy as f64 * rate as f64 / (10_000.0 - rate as f64)) as i64;
    let accounted = busy + idle;

    // Every worker accounts (exec + overhead + idle) against its own wall
    // clock, so the total must come out near workers × elapsed. The bounds
    // are generous: startup slack lowers it, and spawn-path overhead from
    // the (non-worker) main thread lands in worker 0's ledger and raises
    // it slightly.
    let expected = WORKERS as i64 * wall;
    assert!(
        accounted > expected / 3,
        "accounted {accounted}ns ≪ {WORKERS}×wall {expected}ns: time is leaking \
         (exec={exec} overhead={overhead} idle≈{idle})"
    );
    assert!(
        accounted < expected * 5 / 4,
        "accounted {accounted}ns ≫ {WORKERS}×wall {expected}ns: time is double-counted \
         (exec={exec} overhead={overhead} idle≈{idle})"
    );
}

#[test]
fn cumulative_count_is_monotone_and_resets_exactly() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let sp = RpxSpawner::new(rt.handle());
    reg.add_active(TOTAL_COUNT).unwrap();
    reg.reset_active_counters();

    let per_run = fib_task_oracle(10); // 2*fib(11)-2 = 176
    assert_eq!(per_run, 176);

    let run = || {
        let _ = fib::run(&sp, fib::FibInput { n: 10 });
        rt.wait_idle();
    };

    run();
    let v1 = reg.evaluate(TOTAL_COUNT, false).unwrap().value;
    assert_eq!(v1, per_run);

    // Cumulative: a second identical run adds exactly, never rewinds.
    run();
    let v2 = reg.evaluate(TOTAL_COUNT, false).unwrap().value;
    assert!(v2 >= v1, "cumulative counter went backwards: {v1} -> {v2}");
    assert_eq!(v2, 2 * per_run);

    // Evaluate-with-reset returns the pre-reset value (the paper's
    // per-sample protocol), and the next run counts only its own tasks.
    let v3 = reg.evaluate(TOTAL_COUNT, true).unwrap().value;
    assert_eq!(v3, 2 * per_run);
    run();
    let v4 = reg.evaluate(TOTAL_COUNT, false).unwrap().value;
    assert_eq!(v4, per_run, "reset must rebase the cumulative count");

    rt.shutdown();
}
