//! Oracle conformance: every deterministic workload shape ships closed
//! forms (exact task count, edge count, critical path), and every backend
//! must execute *exactly* that graph — equality assertions against the
//! generator's math on all three execution paths, no "looks plausible"
//! bounds.
//!
//! | shape     | tasks                | edges            | critical path |
//! |-----------|----------------------|------------------|---------------|
//! | trivial   | `n`                  | 0                | 1             |
//! | stencil   | `W·T`                | `(T−1)(3W−2)`    | `T`           |
//! | butterfly | `N·(log₂N+1)`        | `2·N·log₂N`      | `log₂N+1`     |
//! | tree      | `2·I + k^d`, I=Σkⁱ   | `2k·I`           | `2d+1`        |
//!
//! The `random` shape has no closed edge form; it gets conservation
//! instead — Σ spawned == Σ completed == task count, cross-checked against
//! the runtime's own `/runtime/tasks/*` counter plane.

use rpx_taskbench::{
    edge_count, Backend, BaselineBackend, GrainCalibration, RuntimeBackend, Shape, SimBackend,
    WorkloadSpec,
};

const GRAIN_NS: u64 = 2_000;
const SEED: u64 = 0xacce55;

/// The three backends under test, fresh per call (a `Box<dyn>` can't be
/// shared across `#[test]` processes anyway).
fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(RuntimeBackend),
        Box::new(BaselineBackend),
        Box::new(SimBackend::hpx()),
    ]
}

/// Run `shape` on every backend and assert the exact closed forms.
fn assert_oracle(shape: Shape) {
    let spec = WorkloadSpec::new(shape, GRAIN_NS, SEED);
    let graph = spec.build();

    // The generator itself must match the closed forms...
    assert_eq!(
        graph.len() as u64,
        shape.task_count(),
        "{}: tasks",
        shape.name()
    );
    if let Some(edges) = shape.edge_count() {
        assert_eq!(edge_count(&graph), edges, "{}: edges", shape.name());
    }
    if shape.critical_path_is_exact() {
        assert_eq!(
            graph.critical_path_ns(),
            shape.critical_path_tasks() * GRAIN_NS,
            "{}: critical path",
            shape.name()
        );
    }

    // ...and every backend must execute exactly that many tasks, with its
    // own counters agreeing with the driver's ledger.
    let cal = GrainCalibration::shared();
    for backend in backends() {
        let ctx = format!("{} on {}", shape.name(), backend.name());
        let stats = backend
            .run(&graph, 2, &cal)
            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_eq!(stats.spawned, shape.task_count(), "{ctx}: spawned");
        assert_eq!(stats.completed, shape.task_count(), "{ctx}: completed");
        assert_eq!(stats.spawned, stats.completed, "{ctx}: conservation");
        if let Some(c) = stats.counter_spawned {
            assert_eq!(c, shape.task_count(), "{ctx}: backend spawn counter");
        }
        if let Some(c) = stats.counter_completed {
            assert_eq!(c, shape.task_count(), "{ctx}: backend completion counter");
        }
        assert_eq!(stats.span_ns, graph.critical_path_ns(), "{ctx}: span");
        assert!(stats.wall_ns > 0, "{ctx}: wall time");
    }
}

#[test]
fn trivial_matches_closed_forms_on_all_backends() {
    // n independent tasks: n tasks, 0 edges, critical path of 1 task.
    let shape = Shape::Trivial { tasks: 96 };
    assert_eq!(shape.task_count(), 96);
    assert_eq!(shape.edge_count(), Some(0));
    assert_eq!(shape.critical_path_tasks(), 1);
    assert_oracle(shape);
}

#[test]
fn stencil_matches_closed_forms_on_all_backends() {
    // W=8, T=6: 48 tasks; rows 1..6 each add 3W−2 = 22 edges → 110;
    // critical path is one task per timestep.
    let shape = Shape::Stencil { width: 8, steps: 6 };
    assert_eq!(shape.task_count(), 48);
    assert_eq!(shape.edge_count(), Some(110));
    assert_eq!(shape.critical_path_tasks(), 6);
    assert_oracle(shape);
}

#[test]
fn butterfly_matches_closed_forms_on_all_backends() {
    // N=16, m=4 stages: N(m+1)=80 tasks, 2Nm=128 edges, path m+1=5.
    let shape = Shape::Butterfly { points_log2: 4 };
    assert_eq!(shape.task_count(), 80);
    assert_eq!(shape.edge_count(), Some(128));
    assert_eq!(shape.critical_path_tasks(), 5);
    assert_oracle(shape);
}

#[test]
fn tree_matches_closed_forms_on_all_backends() {
    // k=2, d=4: interior I=(2⁴−1)/(2−1)=15 fork/join pairs + 2⁴ leaves
    // = 46 tasks, 2kI=60 edges, path 2d+1=9 (fork chain, leaf, join chain).
    let shape = Shape::Tree { arity: 2, depth: 4 };
    assert_eq!(shape.task_count(), 46);
    assert_eq!(shape.edge_count(), Some(60));
    assert_eq!(shape.critical_path_tasks(), 9);
    assert_oracle(shape);

    // Ternary, shallower: I=(3²−1)/2=4, tasks 2·4+9=17, edges 2·3·4=24.
    let ternary = Shape::Tree { arity: 3, depth: 2 };
    assert_eq!(ternary.task_count(), 17);
    assert_eq!(ternary.edge_count(), Some(24));
    assert_oracle(ternary);
}

/// The random shape has no closed edge form — instead, conservation:
/// every spawned task completes, on every backend, and the real runtime's
/// `/runtime/tasks/*` counter plane agrees with the driver's ledger.
#[test]
fn random_shape_conserves_tasks_on_all_backends() {
    let shape = Shape::Random {
        width: 12,
        layers: 6,
        degree: 3,
    };
    assert_eq!(shape.task_count(), 72, "task count is seed-independent");
    assert_oracle(shape);
}

/// The counter cross-check in isolation, straight off the live registry:
/// after a full graph run, `/runtime/tasks/admitted` (spawn side) and
/// `/threads/count/cumulative` (completion side) both equal the closed-form
/// task count, and the pending gauge is drained to zero.
#[test]
fn runtime_counter_plane_agrees_with_oracle() {
    use rpx_runtime::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    let shape = Shape::Stencil { width: 6, steps: 5 };
    let graph = WorkloadSpec::new(shape, 500, SEED).build();
    // A generous admission gate (never closes at this scale) makes the
    // `/runtime/tasks/admitted` spawn-side counter live.
    let rt = Runtime::new(RuntimeConfig {
        max_pending: Some(1 << 20),
        ..RuntimeConfig::with_workers(2)
    });
    let h = rt.handle();

    // Minimal dependence-walking driver, local to the test so the counter
    // claim does not depend on rpx-taskbench's own bookkeeping.
    struct Walk {
        graph: rpx_simnode::TaskGraph,
        deps: Vec<AtomicU32>,
    }
    let walk = Arc::new(Walk {
        deps: graph.tasks.iter().map(|t| AtomicU32::new(t.deps)).collect(),
        graph: graph.clone(),
    });
    fn go(h: &rpx_runtime::RuntimeHandle, w: &Arc<Walk>, id: u32) {
        let (h2, w2) = (h.clone(), w.clone());
        drop(h.spawn(move || {
            let enables = w2.graph.tasks[id as usize].enables.clone();
            for c in enables {
                if w2.deps[c as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    go(&h2, &w2, c);
                }
            }
        }));
    }
    for root in graph.roots() {
        go(&h, &walk, root);
    }
    rt.wait_idle();

    let reg = rt.registry();
    let read = |name: &str| reg.evaluate(name, false).expect(name).value;
    let want = shape.task_count() as i64;
    assert_eq!(read("/runtime{locality#0/total}/tasks/admitted"), want);
    assert_eq!(read("/threads{locality#0/total}/count/cumulative"), want);
    assert_eq!(read("/runtime{locality#0/total}/tasks/pending"), 0);
    rt.shutdown();
}

/// Backends must agree with each other, not only with the math: identical
/// graph in, identical completion ledger out.
#[test]
fn backends_agree_pairwise_on_executed_counts() {
    let cal = GrainCalibration::shared();
    for family in ["stencil", "tree", "butterfly"] {
        let shape = match family {
            "stencil" => Shape::Stencil { width: 6, steps: 4 },
            "tree" => Shape::Tree { arity: 2, depth: 3 },
            _ => Shape::Butterfly { points_log2: 3 },
        };
        let graph = WorkloadSpec::new(shape, GRAIN_NS, SEED).build();
        let counts: Vec<u64> = backends()
            .iter()
            .map(|b| b.run(&graph, 2, &cal).unwrap().completed)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{family}: backends disagree: {counts:?}"
        );
    }
}
