//! Property tests for the taskbench generator: for *arbitrary* knob
//! settings across every shape family, generated graphs are acyclic and
//! well-formed, match their closed forms exactly, carry the requested
//! grain on every task, and are a pure function of the seed.
//!
//! Runs under the in-tree proptest shim: failures print an
//! `RPX_TEST_SEED=0x… cargo test <name>` line that replays the exact
//! failing case.

use proptest::prelude::*;
use rpx_taskbench::{edge_count, graph_hash, Shape, WorkloadSpec};

/// Arbitrary shapes over intentionally small knob ranges (graph size stays
/// in the hundreds so a 256-case run is still instant).
fn shape() -> impl Strategy<Value = Shape> {
    (0u32..5, 1u32..12, 1u32..8, 0u32..5).prop_map(|(family, a, b, c)| match family {
        0 => Shape::Trivial {
            tasks: (a * b) as u64,
        },
        1 => Shape::Stencil { width: a, steps: b },
        2 => Shape::Butterfly {
            points_log2: c, // 1..=16 points
        },
        3 => Shape::Tree {
            arity: 1 + a % 3,
            depth: c,
        },
        _ => Shape::Random {
            width: a,
            layers: b,
            degree: c,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Structural soundness: every generated graph passes the simulator's
    // own validation (consistent dep counts, in-bounds edges, and — via
    // Kahn's algorithm — acyclicity), and its roots are exactly the
    // zero-dep tasks.
    #[test]
    fn generated_graphs_are_acyclic_and_well_formed(
        shape in shape(),
        grain in 1u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let g = WorkloadSpec::new(shape, grain, seed).build();
        prop_assert_eq!(g.validate(), Ok(()));
        let zero_dep = g.tasks.iter().filter(|t| t.deps == 0).count();
        prop_assert_eq!(g.roots().len(), zero_dep);
        prop_assert!(zero_dep > 0, "a DAG must have at least one root");
        // Dependence conservation: Σ in-degrees == Σ out-edges.
        let in_sum: u64 = g.tasks.iter().map(|t| t.deps as u64).sum();
        prop_assert_eq!(in_sum, edge_count(&g));
    }

    // Knob conformance: the closed forms are exact for every knob
    // setting, not just the defaults the unit tests happen to pick.
    #[test]
    fn knobs_match_closed_forms(
        shape in shape(),
        grain in 1u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let g = WorkloadSpec::new(shape, grain, seed).build();
        prop_assert_eq!(g.len() as u64, shape.task_count());
        if let Some(edges) = shape.edge_count() {
            prop_assert_eq!(edge_count(&g), edges);
        }
        let cp = g.critical_path_ns();
        if shape.critical_path_is_exact() {
            prop_assert_eq!(cp, shape.critical_path_tasks() * grain);
        } else {
            prop_assert!(cp <= shape.critical_path_tasks() * grain);
            prop_assert!(cp >= grain, "at least one task on the path");
        }
        // Grain conformance: uniform work on every task.
        prop_assert!(g.tasks.iter().all(|t| t.work_ns == grain));
    }

    // Seed determinism: the graph is a pure function of
    // `(shape, grain, seed)` — bit-identical structure, same hash.
    #[test]
    fn same_seed_same_graph(
        shape in shape(),
        grain in 1u64..100_000,
        seed in 0u64..u64::MAX,
    ) {
        let a = WorkloadSpec::new(shape, grain, seed).build();
        let b = WorkloadSpec::new(shape, grain, seed).build();
        prop_assert_eq!(graph_hash(&a), graph_hash(&b));
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(edge_count(&a), edge_count(&b));
    }

    // Seed independence of the *sizes*: the seed reshuffles the random
    // shape's edges but never its task count, and deterministic shapes
    // ignore it entirely (identical hash under any seed).
    #[test]
    fn seed_only_moves_random_edges(
        shape in shape(),
        grain in 1u64..10_000,
        s1 in 0u64..u64::MAX,
        s2 in 0u64..u64::MAX,
    ) {
        let a = WorkloadSpec::new(shape, grain, s1).build();
        let b = WorkloadSpec::new(shape, grain, s2).build();
        prop_assert_eq!(a.len(), b.len());
        if !matches!(shape, Shape::Random { .. }) {
            prop_assert_eq!(graph_hash(&a), graph_hash(&b));
        }
    }
}
