//! Integration tests for the spawn/join hot path: lost-wakeup freedom
//! under concurrent external spawning and parking workers, the timed-wait
//! semantics of deferred futures, and the pending-accounting health
//! counter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rpx::runtime::{LaunchPolicy, Runtime, RuntimeConfig};

/// Lost-wakeup stress: external threads spawn trivial tasks with gaps long
/// enough for workers to park between bursts, exercising the racy edge of
/// the lock-free sleeper probe (push → fence → count-load vs. register →
/// fence → queue-probe). A lost wakeup shows up as a future that never
/// completes within the deadline; with the 500µs park timeout as a safety
/// net, a *systematic* loss would still blow the per-future deadline under
/// this volume.
#[test]
fn external_spawn_storm_never_loses_wakeups() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let executed = Arc::new(AtomicU64::new(0));
    const THREADS: usize = 4;
    const SPAWNS: usize = 500;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rt = &rt;
            let executed = executed.clone();
            s.spawn(move || {
                for i in 0..SPAWNS {
                    let executed = executed.clone();
                    let f = rt.spawn(move || {
                        executed.fetch_add(1, Ordering::Relaxed);
                        i as u64
                    });
                    assert_eq!(
                        f.get_timeout(Duration::from_secs(10))
                            .unwrap_or_else(|_| panic!("spawn {i} of thread {t} lost")),
                        i as u64
                    );
                    // Let workers drain and park so the next spawn races
                    // against sleeper registration rather than a busy loop.
                    if i % 16 == 0 {
                        std::thread::sleep(Duration::from_micros(700));
                    }
                }
            });
        }
    });

    assert_eq!(executed.load(Ordering::Relaxed), (THREADS * SPAWNS) as u64);
    let total = rt
        .registry()
        .evaluate("/threads{locality#0/total}/count/cumulative", false)
        .unwrap();
    assert!(total.value >= (THREADS * SPAWNS) as i64);
    rt.shutdown();
}

/// Regression (public API): a timed wait on a deferred future must hand the
/// future back without executing the deferred closure — previously
/// `get_timeout(ZERO)` ran the whole closure on the calling thread.
#[test]
fn get_timeout_hands_back_deferred_future_unrun() {
    let rt = Runtime::new(RuntimeConfig::with_workers(1));
    let ran = Arc::new(AtomicBool::new(false));
    let r2 = ran.clone();
    let f = rt.spawn_with(LaunchPolicy::Deferred, move || {
        r2.store(true, Ordering::SeqCst);
        42u64
    });
    let f = f
        .get_timeout(Duration::ZERO)
        .expect_err("deferred future must not complete under a timed wait");
    assert!(
        !ran.load(Ordering::SeqCst),
        "timed wait must not run the deferred closure"
    );
    assert_eq!(f.get(), 42, "an unbounded wait still runs it");
    assert!(ran.load(Ordering::SeqCst));
    rt.shutdown();
}

/// The pending-accounting drift counter exists, reads zero on a healthy
/// run, and is discoverable as a total-only instance.
#[test]
fn pending_underflows_counter_reads_zero_on_healthy_run() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let futures: Vec<_> = (0..200).map(|i| rt.spawn(move || i * 2)).collect();
    for (i, f) in futures.into_iter().enumerate() {
        assert_eq!(f.get(), i * 2);
    }
    rt.wait_idle();
    let v = rt
        .registry()
        .evaluate(
            "/runtime{locality#0/total}/health/pending-underflows",
            false,
        )
        .unwrap();
    assert_eq!(v.value, 0, "healthy runs must show zero accounting drift");
    // After the run drains, the batched pending counter converges to zero:
    // workers publish buffered decrements on their next find-miss, so give
    // them a moment rather than racing the flush.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let pending = rt
            .registry()
            .evaluate(
                "/threads{locality#0/total}/count/instantaneous/pending",
                false,
            )
            .unwrap();
        if pending.value == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "drained runtime still shows {} pending tasks",
            pending.value
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    rt.shutdown();
}

/// Regression for the park gate under the lock-free deques: workers park
/// between bursts while root tasks push children onto their *local* deques
/// (the path where `Scheduler::has_queued_work` must observe a lock-free
/// `is_empty` probe and the sleeper fences must still pair with the push).
/// Each burst makes the other workers cycle through register → probe →
/// park → unpark while steals (single and batched) race the owner's pops.
/// A lost wakeup strands a root task's children and blows the deadline.
#[test]
fn steals_during_park_unpark_never_lose_wakeups() {
    let rt = Runtime::new(RuntimeConfig::with_workers(4));
    let executed = Arc::new(AtomicU64::new(0));
    const ROUNDS: usize = 40;
    const CHILDREN: u64 = 24;

    for round in 0..ROUNDS {
        let executed = executed.clone();
        let h = rt.handle();
        let root = rt.spawn(move || {
            // Children land on the running worker's local deque; parked
            // siblings must be woken to steal their share, and the owner's
            // helping-wait pops race those steals on the same Chase–Lev
            // buffer.
            let futures: Vec<_> = (0..CHILDREN)
                .map(|i| {
                    let executed = executed.clone();
                    h.spawn(move || {
                        executed.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                })
                .collect();
            futures.into_iter().map(|f| f.get()).sum::<u64>()
        });
        assert_eq!(
            root.get_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("round {round}: children lost under park/unpark")),
            CHILDREN * (CHILDREN - 1) / 2
        );
        // Longer than the 500µs park-timeout safety net: every worker
        // parks for real before the next burst, so the next round's pushes
        // race genuine sleeper registrations, not busy probes.
        std::thread::sleep(Duration::from_micros(1500));
    }

    assert_eq!(
        executed.load(Ordering::Relaxed),
        ROUNDS as u64 * CHILDREN,
        "every child must run exactly once"
    );
    let underflows = rt
        .registry()
        .evaluate(
            "/runtime{locality#0/total}/health/pending-underflows",
            false,
        )
        .unwrap();
    assert_eq!(underflows.value, 0);
    rt.shutdown();
}

/// Time-balance regression for the lock-free find loops: failed sweeps —
/// including `Steal::Retry` spins that end a sweep without work — must
/// accrue to `idle_ns`, so per-worker exec + overhead + idle still adds up
/// to roughly the worker's wall-clock lifetime. If retry spins or probe
/// misses leaked out of the accounting, the accounted sum would fall well
/// short of `workers × wall`.
///
/// Uses flat (non-nested) tasks only: a helping wait inside a task would
/// double-count the helped tasks' exec time inside the helper's own exec
/// window and skew the balance upward.
#[test]
fn find_loop_time_accounting_balances_against_wall_clock() {
    const WORKERS: usize = 2;
    let rt = Runtime::new(RuntimeConfig::with_workers(WORKERS));
    let start = std::time::Instant::now();

    for _ in 0..30 {
        let futures: Vec<_> = (0..16)
            .map(|i: u64| {
                rt.spawn(move || {
                    // ~100µs of real work so exec_ns is meaningfully nonzero.
                    let t = std::time::Instant::now();
                    let mut acc = i;
                    while t.elapsed() < Duration::from_micros(100) {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    acc
                })
            })
            .collect();
        for f in futures {
            f.get();
        }
        // Idle gap long enough for every worker to park.
        std::thread::sleep(Duration::from_micros(1500));
    }
    rt.wait_idle();
    let wall = start.elapsed().as_nanos() as i64;

    let eval = |path: &str| rt.registry().evaluate(path, false).unwrap().value;
    let exec = eval("/threads{locality#0/total}/time/cumulative");
    let overhead = eval("/threads{locality#0/total}/time/cumulative-overhead");
    // idle_ns is published as a rate (0.01% units of idle/(idle+busy));
    // recover the cumulative figure from the busy total.
    let rate = eval("/threads{locality#0/total}/idle-rate");
    let busy = exec + overhead;
    assert!(busy > 0, "tasks must have accrued exec/overhead time");
    assert!(rate < 10_000, "workers cannot have been 100% idle");
    let idle = busy * rate / (10_000 - rate);

    let accounted = exec + overhead + idle;
    let budget = WORKERS as i64 * wall;
    assert!(
        accounted >= budget / 2,
        "accounted {accounted}ns < half of {budget}ns: find-miss/Retry time \
         is leaking out of idle_ns"
    );
    assert!(
        accounted <= budget * 3 / 2,
        "accounted {accounted}ns > 1.5x {budget}ns: time is being \
         double-counted somewhere"
    );
    rt.shutdown();
}

/// Deep fork/join through the single-allocation task cells: results stay
/// correct and the overhead counter stays well-formed while every join is
/// a helping wait.
#[test]
fn recursive_fork_join_via_task_cells() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let h = rt.handle();
    fn fib(h: &rpx::runtime::RuntimeHandle, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let h2 = h.clone();
        let a = h.spawn(move || fib(&h2, n - 1));
        let b = fib(h, n - 2);
        a.get() + b
    }
    assert_eq!(fib(&h, 18), 2584);
    rt.wait_idle();
    let overhead = rt
        .registry()
        .evaluate("/threads{locality#0/total}/time/average-overhead", false)
        .unwrap();
    assert!(overhead.value >= 0);
    rt.shutdown();
}
