//! Integration: the APEX-style policy engine steering a live runtime
//! through its intrinsic counters — the paper's §VII capability end to end.

use std::sync::Arc;
use std::time::Duration;

use rpx::apex::{rules, Policy, PolicyEngine, Tunable};
use rpx::runtime::{FaultPlan, OverloadPolicy, Runtime, RuntimeConfig, SpawnError};

fn busy(iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

#[test]
fn policy_engine_tunes_chunk_size_against_overhead_ratio() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();

    // Knob: items per task. Start absurdly fine so overhead dominates.
    let chunk = Tunable::new(200, 100, 1_000_000);
    let policy = Policy::new(
        "grain-control",
        vec![
            "/threads{locality#0/total}/time/average-overhead".into(),
            "/threads{locality#0/total}/time/average".into(),
        ],
    )
    .with_period(Duration::from_millis(10))
    .with_rule(rules::ratio_band(
        "/threads{locality#0/total}/time/average-overhead",
        "/threads{locality#0/total}/time/average",
        0.005,
        0.05,
        chunk.clone(),
        4.0,
        0.5,
    ));
    let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

    // Drive waves of work whose granularity follows the knob.
    const TOTAL: u64 = 1_000_000;
    let mut last_chunk = chunk.get();
    for _wave in 0..12 {
        let c = chunk.get() as u64;
        let tasks = (TOTAL / c).max(1);
        let futures: Vec<_> = (0..tasks).map(|_| rt.spawn(move || busy(c))).collect();
        let mut sink = 0u64;
        for f in futures {
            sink ^= f.get();
        }
        std::hint::black_box(sink);
        last_chunk = chunk.get();
        std::thread::sleep(Duration::from_millis(12)); // let the policy fire
    }
    engine.stop();
    rt.shutdown();

    assert!(
        last_chunk >= 800,
        "the policy should have coarsened the grain from 200, ended at {last_chunk}"
    );
    assert!(
        chunk.changes() > 0,
        "the knob must actually have been adjusted"
    );
}

#[test]
fn policy_engine_observes_runtime_counters_with_wildcards() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let seen = Arc::new(parking_lot::Mutex::new(0u64));
    let s2 = seen.clone();
    let policy = Policy::new(
        "per-worker-watch",
        vec!["/threads{locality#0/worker-thread#*}/count/cumulative".into()],
    )
    .with_period(Duration::from_millis(5))
    .with_reset(false)
    .with_rule(move |ctx| {
        *s2.lock() = ctx.sum("/threads") as u64;
    });
    let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

    let futures: Vec<_> = (0..300).map(|_| rt.spawn(|| ())).collect();
    for f in futures {
        f.get();
    }
    rt.wait_idle();
    let t0 = std::time::Instant::now();
    while *seen.lock() < 300 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    engine.stop();
    assert!(
        *seen.lock() >= 300,
        "policy saw only {} tasks",
        *seen.lock()
    );
    rt.shutdown();
}

#[test]
fn policy_widens_admission_when_the_overload_detector_trips() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        max_pending: Some(8),
        resume_pending: Some(4),
        overload_policy: OverloadPolicy::Shed,
        watchdog_interval: Duration::from_millis(10),
        ..RuntimeConfig::with_workers(2)
    });
    let reg = rt.registry();
    let admission = rt.admission().expect("admission gate configured");

    // Park both workers inside task bodies so pending work cannot drain:
    // the gate saturates at 8 and the detector sees a full queue.
    let release = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicU64::new(0));
    let blockers: Vec<_> = (0..2)
        .map(|_| {
            let release = release.clone();
            let started = started.clone();
            rt.spawn(move || {
                started.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();
    let t0 = std::time::Instant::now();
    while started.load(Ordering::SeqCst) < 2 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    while admission.pending() > 0 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Closed loop: counter stream → policy → admission knob. When the
    // overload verdict reaches Overloaded (2), double the watermarks.
    let knob = admission.clone();
    let policy = Policy::new(
        "admission-widen",
        vec!["/runtime{locality#0/total}/health/overload-state".into()],
    )
    .with_period(Duration::from_millis(5))
    .with_reset(false)
    .with_rule(move |ctx| {
        if ctx.value("/runtime").unwrap_or(0.0) >= 2.0 {
            let (high, low) = knob.limits();
            if high < 32 {
                knob.set_limits(high * 2, low * 2);
            }
        }
    });
    let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

    // Saturate: exactly 8 admissions, then shedding starts.
    let mut queued = Vec::new();
    while queued.len() < 8 {
        match rt.try_spawn(|| ()) {
            Ok(f) => queued.push(f),
            Err(SpawnError::Overloaded(_)) => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(matches!(
        rt.try_spawn(|| ()),
        Err(SpawnError::Overloaded(_))
    ));

    // Watchdog tick marks Overloaded → policy fires → gate widens → the
    // very spawns that were shed now admit.
    let t0 = std::time::Instant::now();
    while admission.limits().0 <= 8 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let (high, low) = admission.limits();
    assert!(
        high >= 16,
        "policy should have widened max_pending from 8, got {high}"
    );
    assert_eq!(low, high / 2, "low watermark scales with high");
    let extra = rt.try_spawn(|| ()).ok();
    assert!(
        extra.is_some(),
        "spawns must admit again after the gate widened"
    );

    release.store(true, Ordering::Release);
    for b in blockers {
        b.get();
    }
    for f in queued {
        f.get();
    }
    if let Some(f) = extra {
        f.get();
    }
    engine.stop();
    rt.shutdown();
}

#[test]
fn policy_reacts_to_anomaly_events() {
    // Closing the measure → diagnose → adapt loop for the *anomaly*
    // detector: an injected steal storm raises a `/runtime/anomaly/*`
    // event, a policy thresholding the event counter sees it and narrows a
    // granularity knob (the canonical response to stealing overhead:
    // coarsen the tasks being stolen).
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        faults: Some(FaultPlan {
            steal_storm_ticks: 6,
            ..FaultPlan::default()
        }),
        watchdog_interval: Duration::from_millis(10),
        ..RuntimeConfig::with_workers(2)
    });
    let reg = rt.registry();

    // Knob: notional grain multiplier. The rule doubles it when any
    // anomaly event has been recorded.
    let grain = Tunable::new(1, 1, 64);
    let knob = grain.clone();
    let policy = Policy::new(
        "anomaly-response",
        vec!["/runtime{locality#0/total}/anomaly/events".into()],
    )
    .with_period(Duration::from_millis(5))
    .with_reset(false)
    .with_rule(move |ctx| {
        if ctx.value("/runtime").unwrap_or(0.0) >= 1.0 && knob.get() < 2 {
            knob.scale(2.0);
        }
    });
    let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

    // Trickle real work so the detector sees executions alongside the
    // injected steal deltas.
    let t0 = std::time::Instant::now();
    while grain.get() < 2 && t0.elapsed() < Duration::from_secs(5) {
        rt.spawn(|| busy(100)).get();
        std::thread::sleep(Duration::from_millis(2));
    }
    engine.stop();

    assert_eq!(
        grain.get(),
        2,
        "the policy should have doubled the grain when the steal-storm \
         event was raised"
    );
    assert!(grain.changes() > 0, "the knob must actually have moved");
    assert!(
        !rt.anomalies().is_empty(),
        "the event log backs the counter the policy observed"
    );
    rt.shutdown();
}
