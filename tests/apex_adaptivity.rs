//! Integration: the APEX-style policy engine steering a live runtime
//! through its intrinsic counters — the paper's §VII capability end to end.

use std::sync::Arc;
use std::time::Duration;

use rpx::apex::{rules, Policy, PolicyEngine, Tunable};
use rpx::runtime::{Runtime, RuntimeConfig};

fn busy(iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

#[test]
fn policy_engine_tunes_chunk_size_against_overhead_ratio() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();

    // Knob: items per task. Start absurdly fine so overhead dominates.
    let chunk = Tunable::new(200, 100, 1_000_000);
    let policy = Policy::new(
        "grain-control",
        vec![
            "/threads{locality#0/total}/time/average-overhead".into(),
            "/threads{locality#0/total}/time/average".into(),
        ],
    )
    .with_period(Duration::from_millis(10))
    .with_rule(rules::ratio_band(
        "/threads{locality#0/total}/time/average-overhead",
        "/threads{locality#0/total}/time/average",
        0.005,
        0.05,
        chunk.clone(),
        4.0,
        0.5,
    ));
    let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

    // Drive waves of work whose granularity follows the knob.
    const TOTAL: u64 = 1_000_000;
    let mut last_chunk = chunk.get();
    for _wave in 0..12 {
        let c = chunk.get() as u64;
        let tasks = (TOTAL / c).max(1);
        let futures: Vec<_> = (0..tasks).map(|_| rt.spawn(move || busy(c))).collect();
        let mut sink = 0u64;
        for f in futures {
            sink ^= f.get();
        }
        std::hint::black_box(sink);
        last_chunk = chunk.get();
        std::thread::sleep(Duration::from_millis(12)); // let the policy fire
    }
    engine.stop();
    rt.shutdown();

    assert!(
        last_chunk >= 800,
        "the policy should have coarsened the grain from 200, ended at {last_chunk}"
    );
    assert!(
        chunk.changes() > 0,
        "the knob must actually have been adjusted"
    );
}

#[test]
fn policy_engine_observes_runtime_counters_with_wildcards() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let seen = Arc::new(parking_lot::Mutex::new(0u64));
    let s2 = seen.clone();
    let policy = Policy::new(
        "per-worker-watch",
        vec!["/threads{locality#0/worker-thread#*}/count/cumulative".into()],
    )
    .with_period(Duration::from_millis(5))
    .with_reset(false)
    .with_rule(move |ctx| {
        *s2.lock() = ctx.sum("/threads") as u64;
    });
    let engine = PolicyEngine::start(&reg, vec![policy]).unwrap();

    let futures: Vec<_> = (0..300).map(|_| rt.spawn(|| ())).collect();
    for f in futures {
        f.get();
    }
    rt.wait_idle();
    let t0 = std::time::Instant::now();
    while *seen.lock() < 300 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    engine.stop();
    assert!(
        *seen.lock() >= 300,
        "policy saw only {} tasks",
        *seen.lock()
    );
    rt.shutdown();
}
