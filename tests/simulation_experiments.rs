//! Integration: the simulated experiments reproduce the paper's
//! qualitative results (shape, not absolute numbers — DESIGN.md §3).

use rpx::inncabs::{Benchmark, InputScale};
use rpx::simnode::{simulate, HpxCostModel, MachineConfig, SimConfig, SimRuntimeKind};
use rpx_bench::{figure, measure_scaling, scaling_limit, table1, table5};

/// Interleaved-pair ratio, median of three: sample A and B back-to-back
/// (A B, A B, A B), form each pair's ratio, and take the median — the
/// drift protocol the CI overhead gate uses (EXPERIMENTS.md), in-process.
/// Cross-run comparisons in this file go through this helper instead of
/// comparing two lone samples against an absolute threshold, so a single
/// perturbed sample (or a retuned cost model) cannot flip a verdict; the
/// virtual-time simulator also happens to be deterministic, which the
/// helper double-checks for free.
fn interleaved_median_ratio(a: impl Fn() -> f64, b: impl Fn() -> f64) -> f64 {
    let mut ratios: Vec<f64> = (0..3).map(|_| a() / b()).collect();
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite ratios"));
    ratios[1]
}

#[test]
fn fine_grained_hpx_dominates_std_across_the_suite() {
    // §VI: for every very-fine benchmark that the baseline completes at
    // all, the lightweight runtime is much faster at 8 cores.
    for b in [
        Benchmark::Fib,
        Benchmark::Fft,
        Benchmark::Uts,
        Benchmark::Health,
    ] {
        let g = b.sim_graph(InputScale::Test);
        assert!(simulate(&g, &SimConfig::hpx(8)).completed());
        if !simulate(&g, &SimConfig::std_async(8)).completed() {
            continue; // the paper's Abort/SegV rows: baseline never finishes
        }
        let ratio = interleaved_median_ratio(
            || simulate(&g, &SimConfig::std_async(8)).makespan_ns as f64,
            || simulate(&g, &SimConfig::hpx(8)).makespan_ns as f64,
        );
        assert!(
            ratio > 3.0,
            "{}: std/hpx median ratio {ratio:.2} should be ≫ 1",
            b.entry().name,
        );
    }
}

#[test]
fn coarse_grained_benchmarks_tie_between_runtimes() {
    // Figs. 1-family: Alignment/SparseLU/Round behave similarly on both.
    for b in [Benchmark::Alignment, Benchmark::Round] {
        let g = b.sim_graph(InputScale::Test);
        let ratio = interleaved_median_ratio(
            || simulate(&g, &SimConfig::std_async(8)).makespan_ns as f64,
            || simulate(&g, &SimConfig::hpx(8)).makespan_ns as f64,
        );
        assert!(
            ratio < 1.5,
            "{}: coarse tasks should tie (std/hpx = {ratio:.2})",
            b.entry().name
        );
    }
}

#[test]
fn task_overhead_is_sub_microsecond_like_the_paper() {
    // §VI: "task overheads … from 0.5µs to 1µs for these benchmarks".
    // Asserted as a ratio against the cost model's own per-task floor
    // (spawn + dispatch on a single core, where nothing can steal), not an
    // absolute nanosecond window: retuning the model moves both sides.
    let g = Benchmark::Fib.sim_graph(InputScale::Test);
    let floor = {
        let m = HpxCostModel::default();
        (m.spawn_ns + m.dispatch_ns) as f64
    };
    let ratio = interleaved_median_ratio(
        || simulate(&g, &SimConfig::hpx(1)).avg_overhead_ns(),
        || floor,
    );
    assert!(
        (0.8..2.0).contains(&ratio),
        "per-task overhead should sit near the model's spawn+dispatch floor \
         (measured/floor = {ratio:.2})"
    );
}

#[test]
fn very_fine_scaling_is_socket_limited() {
    // Figs. 5/6/11/12: very fine benchmarks stop scaling around the
    // socket boundary; coarse ones keep going. The boundary comes from the
    // machine model, not a magic constant.
    let fine = measure_scaling(Benchmark::Uts, InputScale::Paper, SimRuntimeKind::hpx());
    let coarse = measure_scaling(
        Benchmark::Alignment,
        InputScale::Paper,
        SimRuntimeKind::hpx(),
    );
    let fine_limit = scaling_limit(&fine).unwrap();
    let coarse_limit = scaling_limit(&coarse).unwrap();
    assert!(
        coarse_limit >= fine_limit,
        "coarse ({coarse_limit}) should scale at least as far as very fine ({fine_limit})"
    );
    let socket = MachineConfig::ivy_bridge_2s10c().cores_per_socket;
    assert!(
        coarse_limit > socket,
        "alignment should keep scaling past the {socket}-core socket, got {coarse_limit}"
    );
}

#[test]
fn alignment_speedup_matches_paper_factor() {
    // §VI: Alignment reaches speedup ≈17 on 20 cores — i.e. it stays well
    // above the 50% parallel-efficiency floor (the METG convention in
    // EXPERIMENTS.md) where the very-fine benchmarks have long fallen
    // through it. Efficiency ratios, not an absolute speedup window.
    let coarse = measure_scaling(
        Benchmark::Alignment,
        InputScale::Paper,
        SimRuntimeKind::hpx(),
    );
    let fine = measure_scaling(Benchmark::Uts, InputScale::Paper, SimRuntimeKind::hpx());
    let eff = |sweep: &rpx_bench::SweepOutcome| sweep.speedup_at(20).unwrap() / 20.0;
    let (coarse_eff, fine_eff) = (eff(&coarse), eff(&fine));
    assert!(
        coarse_eff >= 0.5 && coarse_eff <= 1.05,
        "alignment efficiency at 20 cores: {coarse_eff:.2} (paper: 17/20 = 0.85)"
    );
    assert!(
        coarse_eff > fine_eff,
        "coarse efficiency {coarse_eff:.2} must beat very-fine {fine_eff:.2}"
    );
}

#[test]
fn overheads_track_execution_gap() {
    // Figs. 8–12: for coarse grain the exec time is almost all task time;
    // for very fine grain scheduling overhead is a significant share.
    let coarse = simulate(
        &Benchmark::Alignment.sim_graph(InputScale::Test),
        &SimConfig::hpx(4),
    );
    let fine = simulate(
        &Benchmark::Fib.sim_graph(InputScale::Test),
        &SimConfig::hpx(4),
    );
    let coarse_share = coarse.total_overhead_ns as f64 / coarse.total_exec_ns.max(1) as f64;
    let fine_share = fine.total_overhead_ns as f64 / fine.total_exec_ns.max(1) as f64;
    assert!(
        coarse_share < 0.01,
        "coarse overhead share {coarse_share:.4}"
    );
    assert!(fine_share > 0.2, "fine overhead share {fine_share:.4}");
}

#[test]
fn bandwidth_figures_saturate_at_the_socket_then_grow_across() {
    // Figs. 13–14: aggregate bandwidth grows with cores, limited by the
    // per-socket controllers.
    let fig = figure(13, InputScale::Paper).unwrap();
    let bw = &fig.series[0];
    let at = |c: u32| {
        bw.points
            .iter()
            .find(|p| p.0 == c)
            .and_then(|p| p.1)
            .unwrap()
    };
    assert!(at(10) > at(1), "bandwidth must grow to the socket boundary");
    let cap = rpx::simnode::MachineConfig::ivy_bridge_2s10c().mem_bw_per_socket_gbps;
    assert!(
        at(10) <= cap * 1.2,
        "one socket cannot exceed its controllers"
    );
    assert!(
        at(20) >= at(10) * 0.8,
        "second socket must not collapse bandwidth"
    );
}

#[test]
fn floorplan_ordering_anomaly_global_vs_local_queues() {
    // §V-D: the std single queue explores the search in a different order
    // than per-worker queues. With a *fixed* task budget the graphs are
    // identical, and the simulated runtimes then differ only in scheduling
    // cost — the fairness device the paper applied.
    let g = Benchmark::Floorplan.sim_graph(InputScale::Test);
    let local = simulate(&g, &SimConfig::hpx(4));
    let mut cfg = SimConfig::hpx(4);
    if let SimRuntimeKind::Hpx { global_queue, .. } = &mut cfg.runtime {
        *global_queue = true;
    }
    let global = simulate(&g, &cfg);
    assert!(local.completed() && global.completed());
    assert_eq!(
        local.tasks_executed, global.tasks_executed,
        "budget fixes the task count"
    );
    // Local queues avoid the contention of one shared queue.
    assert!(local.makespan_ns <= global.makespan_ns * 11 / 10);
}

#[test]
fn table1_and_table5_regenerate_without_panicking() {
    let t1 = table1(InputScale::Test);
    let t5 = table5(InputScale::Test);
    assert_eq!(t1.len(), 14);
    assert_eq!(t5.len(), 14);
    // Spot-check the classification agreement with the paper at test scale
    // for the grain-calibrated rows.
    let row = |n: &str| t5.iter().find(|r| r.name == n).unwrap();
    assert_eq!(row("alignment").granularity, "coarse");
    assert_eq!(row("uts").granularity, "very fine");
    assert_eq!(row("qap").granularity, "very fine");
}

#[test]
fn all_fourteen_figures_build_at_test_scale() {
    for id in 1..=14 {
        let fig = figure(id, InputScale::Test).unwrap();
        assert!(!fig.series.is_empty(), "figure {id} empty");
        // Every figure has at least one finite point.
        assert!(
            fig.series
                .iter()
                .any(|s| s.points.iter().any(|p| p.1.is_some())),
            "figure {id} has no data"
        );
    }
}

#[test]
fn hierarchical_stealing_wins_placement_on_two_sockets() {
    // DESIGN.md §16: with 12 cores spanning both sockets of the Ivy
    // Bridge node (fill-first: 10 + 2), exhausting the local socket
    // before probing remote victims must (a) keep cross-socket steals a
    // minority of all steals and (b) beat the topology-blind victim
    // order, which pays `remote_steal_extra_ns` on steals a local
    // victim could have served. Health at paper scale steals often
    // enough for the placement effect to dominate ordering noise.
    let g = Benchmark::Health.sim_graph(InputScale::Paper);
    let hier = simulate(&g, &SimConfig::hpx(12));

    let mut blind_cfg = SimConfig::hpx(12);
    if let SimRuntimeKind::Hpx { cost, .. } = &mut blind_cfg.runtime {
        cost.topology_blind_steal = true;
    }
    let blind = simulate(&g, &blind_cfg);

    assert!(hier.completed() && blind.completed());
    assert!(hier.steals > 0, "12-core health must steal");
    assert!(
        hier.remote_steals * 2 < hier.steals,
        "hierarchical: remote steals {}/{} should be the minority",
        hier.remote_steals,
        hier.steals
    );
    // Blind order pays the cross-socket surcharge far more often...
    let hier_share = hier.remote_steals as f64 / hier.steals as f64;
    let blind_share = blind.remote_steals as f64 / blind.steals.max(1) as f64;
    assert!(
        hier_share < blind_share,
        "hierarchical remote share {hier_share:.3} vs blind {blind_share:.3}"
    );
    // ...and the simulator is deterministic, so the placement win shows
    // up as a strictly shorter makespan.
    assert!(
        hier.makespan_ns < blind.makespan_ns,
        "hierarchical {} should beat blind {}",
        hier.makespan_ns,
        blind.makespan_ns
    );
}
