//! Property-based tests (proptest) on the core invariants: counter-name
//! grammar round-trips, statistics counters vs. naive references, the
//! simulator on arbitrary DAGs, and benchmark kernels vs. oracles on
//! random inputs.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rpx::counters::{CounterInstance, CounterName, CounterRegistry, InstancePart};
use rpx::simnode::{simulate, GraphBuilder, SimConfig, SimTask};

// ---------------------------------------------------------------------
// Counter names
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,12}".prop_map(|s| s)
}

fn instance_part() -> impl Strategy<Value = InstancePart> {
    (ident(), proptest::option::of(0u32..64)).prop_map(|(name, idx)| match idx {
        Some(i) => InstancePart::indexed(name, i),
        None => InstancePart::plain(name),
    })
}

fn counter_name() -> impl Strategy<Value = CounterName> {
    (
        ident(),
        proptest::option::of((
            instance_part(),
            proptest::collection::vec(instance_part(), 0..3),
        )),
        proptest::collection::vec(ident(), 1..4),
        proptest::option::of("[a-z0-9,/@.-]{1,20}"),
    )
        .prop_map(|(object, instance, counter_parts, params)| {
            let mut name = CounterName::new(object, counter_parts.join("/"));
            if let Some((parent, children)) = instance {
                name = name.with_instance(CounterInstance { parent, children });
            }
            if let Some(p) = params {
                name = name.with_parameters(p);
            }
            name
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn counter_names_round_trip(name in counter_name()) {
        let rendered = name.to_string();
        let parsed: CounterName = rendered.parse().expect("rendered names parse");
        prop_assert_eq!(&parsed, &name);
        prop_assert_eq!(parsed.to_string(), rendered);
    }

    #[test]
    fn type_path_is_instance_free(name in counter_name()) {
        let tp = name.type_path();
        let has_instance_or_params = tp.contains(['{', '@']);
        prop_assert!(!has_instance_or_params, "type path `{}` leaks instance/params", tp);
        let reparsed: CounterName = tp.parse().expect("type paths are valid names");
        prop_assert_eq!(reparsed.object, name.object);
        prop_assert_eq!(reparsed.counter, name.counter);
    }
}

// ---------------------------------------------------------------------
// Statistics counters vs. references
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn statistics_counters_match_naive_reference(samples in proptest::collection::vec(0i64..1_000_000, 1..60)) {
        let reg = CounterRegistry::new();
        let src = Arc::new(AtomicI64::new(0));
        let s2 = src.clone();
        reg.register_raw("/src/v", "h", "1", Arc::new(move || s2.load(Ordering::Relaxed)));
        let avg: CounterName = "/statistics/average@/src/v".parse().unwrap();
        let maxc: CounterName = format!("/statistics/max@/src/v,{}", samples.len()).parse().unwrap();
        let avg = reg.get_counter(&avg).unwrap();
        let maxc = reg.get_counter(&maxc).unwrap();
        for &x in &samples {
            src.store(x, Ordering::Relaxed);
            avg.get_value(false);
            maxc.get_value(false);
        }
        // One extra evaluation appends one extra sample of the last value;
        // account for it in the reference.
        let mut ref_samples = samples.clone();
        ref_samples.push(*samples.last().unwrap());
        let ref_mean = ref_samples.iter().sum::<i64>() as f64 / ref_samples.len() as f64;
        // Fractional means are transported via the scaling fields
        // (milli-units), so the scaled value tracks the reference to
        // sub-unit precision instead of the old ±1 rounding slack.
        let got_mean = avg.get_value(false).scaled();
        prop_assert!((got_mean - ref_mean).abs() <= 1e-3,
            "mean {got_mean} vs reference {ref_mean}");
        let ref_max = *ref_samples.iter().max().unwrap();
        // The max window holds the most recent len(samples) entries of
        // ref_samples — the first sample may have been evicted.
        let windowed_max = *ref_samples[ref_samples.len() - samples.len()..].iter().max().unwrap();
        let got_max = maxc.get_value(false).value;
        prop_assert!(got_max == ref_max || got_max == windowed_max,
            "max {got_max} vs {ref_max}/{windowed_max}");
    }
}

// ---------------------------------------------------------------------
// Simulator on arbitrary layered DAGs
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct LayeredDag {
    layer_sizes: Vec<usize>,
    work: u64,
}

fn layered_dag() -> impl Strategy<Value = LayeredDag> {
    (proptest::collection::vec(1usize..8, 1..5), 100u64..100_000)
        .prop_map(|(layer_sizes, work)| LayeredDag { layer_sizes, work })
}

fn build_dag(d: &LayeredDag) -> rpx::simnode::TaskGraph {
    let mut b = GraphBuilder::new();
    let mut prev: Vec<u32> = Vec::new();
    for &size in &d.layer_sizes {
        let layer: Vec<u32> = (0..size)
            .map(|_| {
                let t = b.new_thread();
                let id = b.add(SimTask::compute(d.work));
                b.begins_thread(id, t);
                b.ends_thread(id, t);
                id
            })
            .collect();
        for &p in &prev {
            for &c in &layer {
                b.edge(p, c);
            }
        }
        prev = layer;
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_completes_any_layered_dag(d in layered_dag(), cores in 1u32..20) {
        let g = build_dag(&d);
        prop_assert!(g.validate().is_ok());
        let r = simulate(&g, &SimConfig::hpx(cores));
        // Work conservation and bounds.
        prop_assert!(r.completed());
        prop_assert_eq!(r.tasks_executed, g.len() as u64);
        prop_assert!(r.total_exec_ns >= g.total_work_ns());
        prop_assert!(r.makespan_ns as u128 >= (g.critical_path_ns() as u128));
        // Makespan can never beat total work spread over the cores.
        let lower = g.total_work_ns() / cores.min(20) as u64;
        prop_assert!(r.makespan_ns >= lower);
    }

    #[test]
    fn simulator_is_deterministic(d in layered_dag(), cores in 1u32..16) {
        let g = build_dag(&d);
        let a = simulate(&g, &SimConfig::hpx(cores));
        let b = simulate(&g, &SimConfig::hpx(cores));
        prop_assert_eq!(a.makespan_ns, b.makespan_ns);
        prop_assert_eq!(a.total_overhead_ns, b.total_overhead_ns);
        prop_assert_eq!(a.steals, b.steals);
    }

    #[test]
    fn more_cores_never_hugely_hurt_compute_dags(d in layered_dag()) {
        // Work-conserving scheduler sanity: 8 cores should not be much
        // slower than 1 core on compute-only DAGs (steal costs only).
        let g = build_dag(&d);
        let one = simulate(&g, &SimConfig::hpx(1));
        let eight = simulate(&g, &SimConfig::hpx(8));
        prop_assert!(eight.makespan_ns <= one.makespan_ns * 13 / 10,
            "8 cores {} ≫ 1 core {}", eight.makespan_ns, one.makespan_ns);
    }
}

// ---------------------------------------------------------------------
// Benchmark kernels on random inputs
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sort_kernel_sorts_any_seed(seed in 1u64.., len_pow in 6u32..12) {
        let input = rpx::inncabs::sort::SortInput { len: 1 << len_pow, cutoff: 64, seed };
        let out = rpx::inncabs::sort::run(&rpx::inncabs::SerialSpawner, input);
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(out.len(), input.len);
    }

    #[test]
    fn alignment_scores_are_symmetric(seed in 1u64.., len in 4usize..64) {
        let input = rpx::inncabs::alignment::AlignmentInput { sequences: 2, length: len, seed };
        let seqs = input.generate();
        let ab = rpx::inncabs::alignment::align_pair(&seqs[0], &seqs[1]);
        let ba = rpx::inncabs::alignment::align_pair(&seqs[1], &seqs[0]);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn uts_trees_are_reproducible(seed in 0u64..10_000) {
        let input = rpx::inncabs::uts::UtsInput { seed, root_branch_milli: 2_000, max_depth: 5 };
        prop_assert_eq!(rpx::inncabs::uts::run_serial(input), rpx::inncabs::uts::run_serial(input));
    }

    #[test]
    fn fft_preserves_energy(seed in 1u64.., len_pow in 3u32..9) {
        use rpx::inncabs::fft;
        let input = fft::FftInput { len: 1 << len_pow, cutoff: 8, seed };
        let signal = input.signal();
        let spectrum = fft::fft_serial(signal.clone());
        let te: f64 = signal.iter().map(|c| c.abs() * c.abs()).sum();
        let fe: f64 = spectrum.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / signal.len() as f64;
        prop_assert!((te - fe).abs() < 1e-6 * te.max(1.0), "energy {te} vs {fe}");
    }
}

// ---------------------------------------------------------------------
// Native runtime on random fork-join trees
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TreeShape {
    /// Children per node, per depth level (empty = leaf everywhere).
    fanouts: Vec<u8>,
}

fn tree_shape() -> impl Strategy<Value = TreeShape> {
    proptest::collection::vec(1u8..4, 0..5).prop_map(|fanouts| TreeShape { fanouts })
}

/// Sum of node values of the fork-join tree, computed recursively with one
/// spawned task per child — the structure of fib/sort/strassen, with a
/// randomized shape exercising the helping scheduler.
fn tree_sum(h: &rpx::runtime::RuntimeHandle, shape: &TreeShape, depth: usize, id: u64) -> u64 {
    let Some(&fanout) = shape.fanouts.get(depth) else {
        return id;
    };
    let futures: Vec<_> = (0..fanout as u64)
        .map(|k| {
            let h2 = h.clone();
            let shape2 = shape.clone();
            let child_id = id.wrapping_mul(31).wrapping_add(k + 1);
            h.spawn(move || tree_sum(&h2, &shape2, depth + 1, child_id))
        })
        .collect();
    id + futures
        .into_iter()
        .map(rpx::runtime::TaskFuture::get)
        .sum::<u64>()
}

fn tree_sum_serial(shape: &TreeShape, depth: usize, id: u64) -> u64 {
    let Some(&fanout) = shape.fanouts.get(depth) else {
        return id;
    };
    id + (0..fanout as u64)
        .map(|k| tree_sum_serial(shape, depth + 1, id.wrapping_mul(31).wrapping_add(k + 1)))
        .sum::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn runtime_executes_random_fork_join_trees(shape in tree_shape(), workers in 1usize..4) {
        let rt = rpx::runtime::Runtime::new(rpx::runtime::RuntimeConfig::with_workers(workers));
        let h = rt.handle();
        let got = tree_sum(&h, &shape, 0, 1);
        let expected = tree_sum_serial(&shape, 0, 1);
        rt.wait_idle();
        // The counters must agree with the tree size.
        let tasks: u64 = shape.fanouts.iter().fold((1u64, 1u64), |(total, width), &f| {
            let w = width * f as u64;
            (total + w, w)
        }).0 - 1; // spawned tasks = nodes minus the root (run inline)
        let counted = rt
            .registry()
            .evaluate("/threads{locality#0/total}/count/cumulative", false)
            .unwrap()
            .value as u64;
        rt.shutdown();
        prop_assert_eq!(got, expected);
        prop_assert!(counted >= tasks, "counted {} < spawned {}", counted, tasks);
    }
}
