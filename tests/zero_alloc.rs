//! Zero-allocation proof for the slab spawn path (DESIGN.md §16).
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up run has grown the deques and primed every per-worker slab,
//! a second identical fork/join run must allocate (almost) nothing:
//! thousands of task spawns, a near-zero heap delta. The same run's
//! `/runtime/slab/fallback-allocs` counter cross-checks the result from
//! inside the runtime — the two measurements must agree that the heap
//! path stayed cold.
//!
//! This is its own integration test binary because a global allocator
//! is process-wide: the counter would otherwise see every other test's
//! traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use rpx::runtime::{Runtime, RuntimeConfig, RuntimeHandle};

fn fib(h: &RuntimeHandle, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let h2 = h.clone();
    let a = h.spawn(move || fib(&h2, n - 1));
    let b = fib(h, n - 2);
    a.get() + b
}

#[test]
fn steady_state_spawns_do_not_touch_the_heap() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let h = rt.handle();

    // Warm-up: grow the deques, fault in the slabs, register counters.
    fib(&h, 18);
    rt.wait_idle();

    let read = |name: &str| {
        reg.evaluate(name, false)
            .map(|v| v.value)
            .unwrap_or_default()
    };
    let tasks_before = read("/threads{locality#0/total}/count/cumulative");
    let fallback_before = read("/runtime{locality#0/total}/slab/fallback-allocs");

    let heap_before = ALLOCS.load(Ordering::Relaxed);
    fib(&h, 18);
    rt.wait_idle();
    let heap_delta = ALLOCS.load(Ordering::Relaxed) - heap_before;

    let tasks = read("/threads{locality#0/total}/count/cumulative") - tasks_before;
    let fallback = read("/runtime{locality#0/total}/slab/fallback-allocs") - fallback_before;

    assert!(tasks >= 4_000, "fib(18) spawns thousands of tasks: {tasks}");
    // The root spawn comes from this (external) thread and legitimately
    // takes the heap path; worker-side recursion must not. The bound
    // leaves room for a stray park/unpark or a transient slab-exhausted
    // fallback, while still proving the per-spawn Arc + closure
    // allocations (2+ per task, ~9k+ for this run) are gone.
    assert!(
        heap_delta < 100,
        "steady-state run of {tasks} tasks allocated {heap_delta} times"
    );
    assert!(
        fallback <= heap_delta as i64,
        "runtime claims {fallback} heap-fallback spawns but the \
         allocator only saw {heap_delta} allocations"
    );
    assert!(
        fallback * 100 < tasks,
        "heap fallback must be rare: {fallback}/{tasks}"
    );

    rt.shutdown();
}
