//! Integration: every Inncabs benchmark runs natively on the
//! lightweight-task runtime (and a sample of them on the thread-per-task
//! baseline) and reproduces the sequential oracle exactly.

use std::sync::Arc;

use rpx::baseline::BaselineRuntime;
use rpx::inncabs::spawner::{RpxSpawner, StdSpawner};
use rpx::inncabs::*;
use rpx::runtime::{Runtime, RuntimeConfig};

fn with_rpx<T>(f: impl FnOnce(&RpxSpawner) -> T) -> T {
    let rt = Runtime::new(RuntimeConfig::with_workers(3));
    let out = f(&RpxSpawner::new(rt.handle()));
    rt.shutdown();
    out
}

fn with_std<T>(f: impl FnOnce(&StdSpawner) -> T) -> T {
    let rt = Arc::new(BaselineRuntime::with_defaults());
    f(&StdSpawner::new(rt))
}

#[test]
fn fib_on_rpx_matches_oracle() {
    let input = fib::FibInput::test();
    assert_eq!(with_rpx(|sp| fib::run(sp, input)), fib::run_serial(input));
}

#[test]
fn fib_on_std_matches_oracle() {
    let input = fib::FibInput { n: 10 }; // 177 OS threads
    assert_eq!(with_std(|sp| fib::run(sp, input)), fib::run_serial(input));
}

#[test]
fn sort_on_rpx_matches_oracle() {
    let input = sort::SortInput::test();
    assert_eq!(with_rpx(|sp| sort::run(sp, input)), sort::run_serial(input));
}

#[test]
fn sort_on_std_matches_oracle() {
    let input = sort::SortInput {
        len: 2_048,
        cutoff: 256,
        seed: 5,
    };
    assert_eq!(with_std(|sp| sort::run(sp, input)), sort::run_serial(input));
}

#[test]
fn strassen_on_rpx_matches_oracle() {
    let input = strassen::StrassenInput {
        n: 32,
        cutoff: 8,
        seed: 2,
    };
    let par = with_rpx(|sp| strassen::run(sp, input));
    assert!(par.max_diff(&strassen::run_serial(input)) < 1e-6);
}

#[test]
fn fft_on_rpx_matches_oracle() {
    let input = fft::FftInput::test();
    let par = with_rpx(|sp| fft::run(sp, input));
    let ser = fft::run_serial(input);
    assert!(par
        .iter()
        .zip(&ser)
        .all(|(a, b)| (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9));
}

#[test]
fn nqueens_on_rpx_matches_oracle() {
    let input = nqueens::NQueensInput { n: 7 };
    assert_eq!(
        with_rpx(|sp| nqueens::run(sp, input)),
        nqueens::run_serial(input)
    );
}

#[test]
fn uts_on_rpx_matches_oracle() {
    let input = uts::UtsInput::test();
    assert_eq!(with_rpx(|sp| uts::run(sp, input)), uts::run_serial(input));
}

#[test]
fn alignment_on_rpx_matches_oracle() {
    let input = alignment::AlignmentInput::test();
    assert_eq!(
        with_rpx(|sp| alignment::run(sp, input)),
        alignment::run_serial(input)
    );
}

#[test]
fn sparselu_on_rpx_matches_oracle() {
    let input = sparselu::SparseLuInput::test();
    let par = with_rpx(|sp| sparselu::run(sp, input)).to_dense();
    let ser = sparselu::run_serial(input).to_dense();
    assert_eq!(par.len(), ser.len());
    let max = par
        .iter()
        .zip(&ser)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(max < 1e-9, "parallel LU diverged by {max}");
}

#[test]
fn health_on_rpx_matches_oracle() {
    let input = health::HealthInput::test();
    assert_eq!(
        with_rpx(|sp| health::run(sp, input)),
        health::run_serial(input)
    );
}

#[test]
fn pyramids_on_rpx_matches_oracle() {
    let input = pyramids::PyramidsInput::test();
    let par = with_rpx(|sp| pyramids::run(sp, input));
    let ser = pyramids::run_serial(input);
    assert!(par.iter().zip(&ser).all(|(a, b)| (a - b).abs() < 1e-9));
}

#[test]
fn floorplan_on_rpx_finds_the_optimal_area() {
    let input = floorplan::FloorplanInput::test();
    let par = with_rpx(|sp| floorplan::run(sp, input));
    let ser = floorplan::run_serial(input);
    // Node counts are order-dependent (the paper's anomaly); the optimum
    // is not.
    assert_eq!(par.best_area, ser.best_area);
}

#[test]
fn qap_on_rpx_finds_the_optimal_cost() {
    let input = qap::QapInput::test();
    let par = with_rpx(|sp| qap::run(sp, input));
    assert_eq!(par.best_cost, qap::brute_force(input));
}

#[test]
fn intersim_on_rpx_matches_oracle() {
    let input = intersim::IntersimInput::test();
    assert_eq!(
        with_rpx(|sp| intersim::run(sp, input)),
        intersim::run_serial(input)
    );
}

#[test]
fn round_on_rpx_matches_oracle() {
    let input = round::RoundInput::test();
    assert_eq!(
        with_rpx(|sp| round::run(sp, input)),
        round::run_serial(input)
    );
}

#[test]
fn round_on_std_matches_oracle() {
    let input = round::RoundInput {
        players: 4,
        rounds: 2,
        work: 500,
        seed: 3,
    };
    assert_eq!(
        with_std(|sp| round::run(sp, input)),
        round::run_serial(input)
    );
}

#[test]
fn counters_observe_an_inncabs_run() {
    // Running a benchmark leaves a coherent trail in the counters.
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    reg.reset_active_counters();
    let sp = RpxSpawner::new(rt.handle());
    let _ = nqueens::run(&sp, nqueens::NQueensInput { n: 7 });
    rt.wait_idle();
    let tasks = reg
        .evaluate("/threads{locality#0/total}/count/cumulative", false)
        .unwrap()
        .value;
    let avg = reg
        .evaluate("/threads{locality#0/total}/time/average", false)
        .unwrap();
    // nqueens(7) explores a few hundred placements — each one a task.
    assert!(tasks > 100, "expected >100 tasks, saw {tasks}");
    assert!(avg.status.is_ok() && avg.value > 0);
    rt.shutdown();
}
