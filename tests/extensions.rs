//! Integration: the extension features — histogram counters, distributed
//! (multi-locality) counter access, task tracing, and affinity layouts —
//! working against live runtimes.

use rpx::counters::histogram::snapshot_of;
use rpx::counters::{CounterName, DistributedRegistry};
use rpx::runtime::affinity::{BindSpec, Topology};
use rpx::runtime::{Runtime, RuntimeConfig};

fn spin(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i).rotate_left(7);
    }
    acc
}

#[test]
fn histogram_of_live_task_durations() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let name: CounterName =
        "/statistics/histogram@/threads{locality#0/total}/time/average,0,1000000,20"
            .parse()
            .unwrap();
    let hist = reg.get_counter(&name).unwrap();

    for round in 0..10 {
        let futures: Vec<_> = (0..20)
            .map(|_| rt.spawn(move || std::hint::black_box(spin(1_000 * (round + 1)))))
            .collect();
        for f in futures {
            f.get();
        }
        hist.get_value(false); // sample the average into the histogram
    }

    let snap = snapshot_of(&hist).expect("histogram downcast");
    assert_eq!(snap.total(), 10, "one sample per round");
    assert!(snap.mode().is_some());
    rt.shutdown();
}

#[test]
fn distributed_registry_over_two_runtimes() {
    let rt0 = Runtime::new(RuntimeConfig {
        workers: 2,
        locality: 0,
        ..Default::default()
    });
    let rt1 = Runtime::new(RuntimeConfig {
        workers: 2,
        locality: 1,
        ..Default::default()
    });
    let cluster = DistributedRegistry::new(vec![rt0.registry(), rt1.registry()]);

    let f0: Vec<_> = (0..50).map(|_| rt0.spawn(|| ())).collect();
    let f1: Vec<_> = (0..150).map(|_| rt1.spawn(|| ())).collect();
    f0.into_iter().for_each(|f| f.get());
    f1.into_iter().for_each(|f| f.get());
    rt0.wait_idle();
    rt1.wait_idle();

    // Remote point query.
    let v = cluster
        .evaluate("/threads{locality#1/total}/count/cumulative", false)
        .unwrap();
    assert_eq!(v.len(), 1);
    assert!(v[0].1.value >= 150);

    // Locality fan-out aggregation.
    let total = cluster
        .evaluate_sum("/threads{locality#*/total}/count/cumulative", false)
        .unwrap();
    assert!(total >= 200.0, "cluster-wide count {total}");

    // Remote per-worker wildcard.
    let per_worker = cluster
        .evaluate(
            "/threads{locality#1/worker-thread#*}/count/cumulative",
            false,
        )
        .unwrap();
    assert_eq!(per_worker.len(), 2);
    let sum: f64 = per_worker.iter().map(|(_, v)| v.scaled()).sum();
    assert!(sum >= 150.0);

    rt0.shutdown();
    rt1.shutdown();
}

#[test]
fn tracer_profile_accounts_for_all_workers_used() {
    let rt = Runtime::new(RuntimeConfig::with_workers(3));
    let tracer = rt.tracer();
    tracer.enable();
    let futures: Vec<_> = (0..600)
        .map(|_| rt.spawn(|| std::hint::black_box(spin(2_000))))
        .collect();
    for f in futures {
        f.get();
    }
    tracer.disable();
    let profile = tracer.per_worker_profile();
    let tasks: u64 = profile.iter().map(|(_, _, t)| t).sum();
    assert!(tasks >= 600);
    // With 600 tasks on 3 workers, stealing should spread work to several
    // workers (not a strict guarantee, but 600 tasks make it overwhelming).
    assert!(
        profile.len() >= 2,
        "only {} workers ran tasks",
        profile.len()
    );
    rt.shutdown();
}

#[test]
fn affinity_layouts_cover_the_paper_protocol() {
    // The paper pins fill-first over a 2×10 topology; compact is exactly
    // that, and every worker count the sweep uses gets a distinct core.
    let topo = Topology {
        sockets: 2,
        cores_per_socket: 10,
        smt: 1,
    };
    for workers in [1u32, 2, 4, 10, 11, 20] {
        let placement = BindSpec::Compact.placement(&topo, workers);
        let mut hw: Vec<u32> = placement.iter().map(|p| p.unwrap()).collect();
        hw.sort_unstable();
        hw.dedup();
        assert_eq!(
            hw.len(),
            workers as usize,
            "distinct cores for {workers} workers"
        );
        // Fill-first: worker w sits on hw thread w.
        assert_eq!(placement[0], Some(0));
        if workers >= 11 {
            assert_eq!(placement[10], Some(10), "11th worker crosses the socket");
        }
    }
}

#[test]
fn sync_counters_visible_through_runtime_registry() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    rpx::runtime::sync::register_sync_counters(&reg);
    let m = std::sync::Arc::new(rpx::runtime::sync::Mutex::new(0u64));
    let futures: Vec<_> = (0..100)
        .map(|_| {
            let m = m.clone();
            rt.spawn(move || {
                *m.lock() += 1;
            })
        })
        .collect();
    for f in futures {
        f.get();
    }
    assert_eq!(*m.lock(), 100);
    let acq = reg
        .evaluate("/synchronization/locks/acquisitions", false)
        .unwrap();
    assert!(acq.value >= 100);
    rt.shutdown();
}
