//! Causal-profiler conformance against closed-form oracles (ISSUE 7
//! acceptance criteria).
//!
//! Three ways of checking the same algebra:
//!
//! 1. **Synthetic fib(20)** — the spawn tree of the naive parallel
//!    Fibonacci has closed forms for task count (`2·fib(n+1) − 1` with the
//!    root), work (one unit each), and span (the chain fib(n) → … →
//!    fib(1), `n` units); the profiler and its what-if projections must
//!    match within 1% (they are exact).
//! 2. **Simnode stencil DAG** — a rows×cols wavefront grid whose
//!    event-exact critical path [`TaskGraph::critical_path_ns`] is the
//!    oracle: spans generated from infinite-core finish times with the
//!    *release edge* (the last-finishing predecessor) as parent must
//!    reproduce it exactly.
//! 3. **The real runtime** — Inncabs fib through a tracer-enabled
//!    [`Runtime`]: the span stream's task count must equal the spawn
//!    oracle, the profile must be physically consistent, and the tracer's
//!    self-measured overhead must stay inside the paper's ≤10% envelope.

use rpx::causal::CausalProfiler;
use rpx::inncabs::fib::{self, FibInput};
use rpx::inncabs::spawner::RpxSpawner;
use rpx::runtime::runtime::{Runtime, RuntimeConfig};
use rpx::runtime::trace::TaskSpan;
use rpx::simnode::{GraphBuilder, SimTask, TaskGraph};

fn fib_u64(n: u64) -> u64 {
    (0..n).fold((0u64, 1u64), |(a, b), _| (b, a + b)).0
}

fn span(task_id: u64, parent: Option<u64>, site: u32, net: u64) -> TaskSpan {
    TaskSpan {
        task_id,
        parent,
        site,
        worker: 0,
        start_ns: 0,
        end_ns: net,
        wait_ns: 0,
        nested_ns: 0,
    }
}

/// Relative error |got − want| / want.
fn rel_err(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(1e-12)
}

/// Synthetic spans of the fib(n) spawn tree, unit net duration per task.
fn fib_spans(n: u64) -> Vec<TaskSpan> {
    let mut spans = Vec::new();
    let mut next_id = 1u64;
    let mut stack = vec![(n, None::<u64>)];
    while let Some((k, parent)) = stack.pop() {
        let id = next_id;
        next_id += 1;
        spans.push(span(id, parent, 1, 1));
        if k >= 2 {
            stack.push((k - 1, Some(id)));
            stack.push((k - 2, Some(id)));
        }
    }
    spans
}

#[test]
fn fib20_matches_closed_form_within_one_percent() {
    const N: u64 = 20;
    let profiler = CausalProfiler::from_spans(&fib_spans(N));
    let analysis = profiler.analyze();

    let want_tasks = 2 * fib_u64(N + 1) - 1; // 21_891
    let want_span = N;
    assert_eq!(analysis.tasks, want_tasks);
    assert_eq!(analysis.work_ns, want_tasks, "unit work per task");
    assert!(
        rel_err(analysis.span_ns as f64, want_span as f64) < 0.01,
        "span {} vs oracle {want_span}",
        analysis.span_ns
    );
    assert_eq!(analysis.critical_path.len() as u64, want_span);

    // What-if: every task comes from one site, so a k× site speedup is a
    // k× program speedup in both work and span — projected makespan on P
    // cores is max(W/(kP), S/k).
    for k in [2.0, 10.0] {
        let w = profiler.what_if(1, k, 8);
        let want_span_k = want_span as f64 / k;
        let want_work_k = want_tasks as f64 / k;
        assert!(
            rel_err(w.span_ns, want_span_k) < 0.01,
            "what-if span {} vs {want_span_k}",
            w.span_ns
        );
        assert!(rel_err(w.work_ns, want_work_k) < 0.01);
        assert!(rel_err(w.makespan_ns, (want_work_k / 8.0).max(want_span_k)) < 0.01);
    }
}

/// A rows×cols stencil (wavefront) DAG: cell (r, c) depends on its left
/// and upper neighbours; grain varies per cell so the critical path is not
/// degenerate. Returns the graph and per-cell work.
fn stencil_graph(rows: usize, cols: usize) -> (TaskGraph, Vec<u64>) {
    let mut b = GraphBuilder::new();
    let mut work = Vec::with_capacity(rows * cols);
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            // 1–3µs grains in a deterministic pattern.
            let w = 1_000 + ((r * 31 + c * 17) % 5) as u64 * 500;
            work.push(w);
            let id = b.add(SimTask::compute(w));
            if c > 0 {
                b.edge(ids[r * cols + c - 1], id);
            }
            if r > 0 {
                b.edge(ids[(r - 1) * cols + c], id);
            }
            ids.push(id);
        }
    }
    (b.build(), work)
}

/// Spans for the stencil from its *event-exact* infinite-core schedule:
/// finish(t) = work(t) + max over predecessors finish, and each task's
/// parent is the predecessor that released it (argmax finish). Down-chains
/// over that release forest reproduce the DAG's critical path exactly.
fn stencil_spans(rows: usize, cols: usize, work: &[u64]) -> Vec<TaskSpan> {
    let mut finish = vec![0u64; rows * cols];
    let mut spans = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            let left = (c > 0).then(|| i - 1);
            let up = (r > 0).then(|| i - cols);
            let release = [left, up].into_iter().flatten().max_by_key(|&p| finish[p]);
            let start = release.map_or(0, |p| finish[p]);
            finish[i] = start + work[i];
            spans.push(TaskSpan {
                task_id: i as u64 + 1,
                parent: release.map(|p| p as u64 + 1),
                site: 2,
                worker: 0,
                start_ns: start,
                end_ns: finish[i],
                wait_ns: 0,
                nested_ns: 0,
            });
        }
    }
    spans
}

#[test]
fn simnode_stencil_span_matches_graph_critical_path() {
    let (rows, cols) = (24, 17);
    let (graph, work) = stencil_graph(rows, cols);
    graph.validate().expect("stencil DAG is well-formed");
    let spans = stencil_spans(rows, cols, &work);

    let profiler = CausalProfiler::from_spans(&spans);
    let analysis = profiler.analyze();

    let oracle = graph.critical_path_ns();
    assert_eq!(analysis.work_ns, graph.total_work_ns());
    assert!(
        rel_err(analysis.span_ns as f64, oracle as f64) < 0.01,
        "profiler span {} vs graph critical path {oracle}",
        analysis.span_ns
    );

    // Uniform what-if (all tasks share site 2): span scales by 1/k and the
    // projection stays within 1% of the scaled oracle.
    let w = profiler.what_if(2, 3.0, 4);
    assert!(
        rel_err(w.span_ns, oracle as f64 / 3.0) < 0.01,
        "what-if span {} vs {}",
        w.span_ns,
        oracle as f64 / 3.0
    );
}

#[test]
fn real_runtime_fib_profile_matches_spawn_oracle() {
    const N: u64 = 12;
    const WORKERS: usize = 2;
    let rt = Runtime::new(RuntimeConfig::with_workers(WORKERS));
    let tracer = rt.tracer();
    tracer.enable();
    let sp = RpxSpawner::new(rt.handle());
    let t0 = std::time::Instant::now();
    assert_eq!(fib::run(&sp, FibInput { n: N }), 144);
    rt.wait_idle();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    tracer.disable();

    let spans = tracer.spans();
    // Every spawned task produced exactly one span: 2·fib(n+1) − 2 (the
    // top-level call runs on the test thread, both recursive branches are
    // spawned). Well under the 64k ring, so nothing wrapped.
    let want_tasks = 2 * fib_u64(N + 1) - 2;
    assert_eq!(tracer.dropped(), 0);
    assert_eq!(spans.len() as u64, want_tasks);

    let profiler = CausalProfiler::from_spans(&spans);
    let analysis = profiler.analyze();
    assert_eq!(analysis.tasks, want_tasks);
    // Physical consistency: net work cannot exceed the wall-clock budget
    // of the machine (workers × wall, with the test thread helping too).
    assert!(
        analysis.work_ns <= wall_ns * (WORKERS as u64 + 1),
        "net work {} exceeds wall budget {}",
        analysis.work_ns,
        wall_ns * (WORKERS as u64 + 1)
    );
    // The span is a chain through the profile; it cannot exceed the work.
    assert!(analysis.span_ns > 0 && analysis.span_ns <= analysis.work_ns);
    assert!(analysis.parallelism() >= 1.0);
    // All spans share the single RpxSpawner::spawn site.
    assert_eq!(
        analysis.sites.len(),
        1,
        "one spawn site: {:?}",
        analysis.sites
    );

    // The double-count regression (ISSUE 7 satellite): with nested
    // help-execution deducted, no single worker's profiled busy time can
    // exceed the window's wall time. Fib's blocking joins force helping,
    // so gross accounting would overshoot here.
    for (worker, busy_ns, tasks) in tracer.per_worker_profile() {
        assert!(
            busy_ns <= wall_ns,
            "worker {worker} profiled busy {busy_ns}ns over {tasks} tasks \
             exceeds the {wall_ns}ns window"
        );
    }
    rt.shutdown();
}

#[test]
fn tracer_overhead_stays_inside_ten_percent_envelope() {
    // The paper's ≤10% instrumentation envelope, proven by the tracer's
    // *self-measurement* counters: time spent inside record() vs the net
    // task execution time it measured. fib(17) gives ~5k microsecond-scale
    // tasks — small enough for CI, large enough that the ratio is stable.
    const N: u64 = 17;
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let tracer = rt.tracer();
    tracer.enable();
    let sp = RpxSpawner::new(rt.handle());
    assert_eq!(fib::run(&sp, FibInput { n: N }), 1597);
    rt.wait_idle();
    tracer.disable();

    let recorded: u64 = tracer.spans().iter().map(|s| s.net_ns()).sum();
    let overhead = tracer.overhead_ns();
    assert!(tracer.records() > 0 && recorded > 0);
    // The paper's envelope applies to optimized builds (its measurements
    // are `-O3`); an unoptimized tracer against unoptimized microsecond
    // tasks lands near 20%, so debug builds only sanity-bound the ratio.
    // CI runs this test under `--release` where the strict bound holds
    // with an order of magnitude to spare.
    let max_percent: u64 = if cfg!(debug_assertions) { 50 } else { 10 };
    assert!(
        overhead * 100 <= recorded * max_percent,
        "tracer overhead {overhead}ns exceeds {max_percent}% of measured \
         execution {recorded}ns"
    );

    // The same figures via the public self-measurement counters.
    let reg = rt.registry();
    let counter_overhead = reg
        .evaluate("/runtime{locality#0/total}/trace/overhead-time", false)
        .expect("overhead counter registered")
        .value;
    let records = reg
        .evaluate("/runtime{locality#0/total}/trace/records", false)
        .expect("records counter registered")
        .value;
    assert_eq!(counter_overhead as u64, tracer.overhead_ns());
    assert_eq!(records as u64, tracer.records());
    rt.shutdown();
}
