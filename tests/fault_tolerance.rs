//! Chaos suite for the fault-tolerance layer: deterministic fault
//! injection ([`rpx_runtime::FaultPlan`]) driving cancellation, worker
//! respawn, stall detection, and sampler resilience — with *exact*
//! agreement between what the injector says it injected and what the
//! `/runtime/health/*` counters report.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rpx_counters::registry::CounterRegistry;
use rpx_counters::sampler::{CsvSink, Sampler, SamplerConfig};
use rpx_inncabs::spawner::RpxSpawner;
use rpx_inncabs::{fib, health};
use rpx_runtime::faults::register_flaky_counter;
use rpx_runtime::{
    CancelToken, FaultPlan, InjectedFault, OverloadPolicy, Runtime, RuntimeConfig, SpawnError,
    TaskCancelled,
};

/// Silence the default panic hook for *intentional* unwinds (injected
/// faults); real panics still print.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.downcast_ref::<InjectedFault>().is_some()
                || payload.downcast_ref::<TaskCancelled>().is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn health_total(reg: &Arc<CounterRegistry>, which: &str) -> i64 {
    reg.evaluate(
        &format!("/runtime{{locality#0/total}}/health/{which}"),
        false,
    )
    .expect("health counter evaluates")
    .value
}

fn health_worker(reg: &Arc<CounterRegistry>, which: &str, worker: usize) -> i64 {
    reg.evaluate(
        &format!("/runtime{{locality#0/worker-thread#{worker}}}/health/{which}"),
        false,
    )
    .expect("per-worker health counter evaluates")
    .value
}

fn tasks_total(reg: &Arc<CounterRegistry>, which: &str) -> i64 {
    reg.evaluate(
        &format!("/runtime{{locality#0/total}}/tasks/{which}"),
        false,
    )
    .expect("tasks counter evaluates")
    .value
}

/// Park `n` workers inside task bodies until `release` flips; returns the
/// blocker futures once all `n` are actually executing (so everything
/// spawned afterwards is guaranteed to stay queued).
fn park_workers(
    rt: &Runtime,
    n: usize,
    release: &Arc<AtomicBool>,
) -> Vec<rpx_runtime::TaskFuture<()>> {
    let started = Arc::new(AtomicU64::new(0));
    let blockers: Vec<_> = (0..n)
        .map(|_| {
            let release = release.clone();
            let started = started.clone();
            rt.spawn(move || {
                started.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();
    assert!(
        wait_until(
            || started.load(Ordering::SeqCst) == n as u64,
            Duration::from_secs(5)
        ),
        "blockers never started"
    );
    blockers
}

#[test]
fn fib_is_correct_with_exact_health_counts_under_panics_and_kills() {
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        faults: Some(FaultPlan {
            seed: 7,
            task_panic_ppm: 30_000,
            worker_kill_ppm: 50_000,
            max_per_category: 25,
            ..FaultPlan::default()
        }),
        ..RuntimeConfig::with_workers(4)
    });
    let injector = rt.fault_injector().expect("active plan yields an injector");
    let reg = rt.registry();

    let input = fib::FibInput { n: 17 };
    let result = fib::run(&RpxSpawner::new(rt.handle()), input);
    assert_eq!(
        result,
        fib::run_serial(input),
        "injected faults must not corrupt results"
    );

    // Kill draws happen only at top-level dispatches (never mid-unwind of a
    // task that work-helped others), and fib's recursion runs mostly inside
    // helping waits — so follow with a flat burst of independent tasks,
    // which all dispatch at the top level of the worker loop.
    let burst: Vec<_> = (0..400u64).map(|i| rt.spawn(move || i)).collect();
    for (i, f) in burst.into_iter().enumerate() {
        assert_eq!(f.get(), i as u64);
    }
    rt.wait_idle();

    // Enough dispatches (≈ 2·fib(17) spawns + the burst) that both
    // categories fired.
    assert!(
        injector.task_panics() > 0,
        "plan should have injected task panics"
    );
    assert!(
        injector.worker_kills() > 0,
        "plan should have injected worker kills"
    );

    // Recovered-task accounting is synchronous with dispatch: exact already.
    assert_eq!(
        health_total(&reg, "recovered-tasks") as u64,
        injector.task_panics()
    );
    // Restart accounting happens in the supervisor a moment after the
    // injected unwind; poll for the exact match.
    assert!(
        wait_until(
            || health_total(&reg, "restarts") as u64 == injector.worker_kills(),
            Duration::from_secs(5),
        ),
        "restarts {} never matched injected kills {}",
        health_total(&reg, "restarts"),
        injector.worker_kills()
    );
    // The respawned workers are live: the runtime still computes.
    assert_eq!(rt.spawn(|| 2 + 2).get(), 4);
    rt.shutdown();
}

#[test]
fn watchdog_counts_each_injected_stall_exactly_once() {
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        faults: Some(FaultPlan {
            stall_ppm: 1_000_000,
            stall: Duration::from_millis(300),
            max_per_category: 4,
            ..FaultPlan::default()
        }),
        watchdog_interval: Duration::from_millis(15),
        stall_threshold: Duration::from_millis(60),
        ..RuntimeConfig::with_workers(2)
    });
    let injector = rt.fault_injector().unwrap();
    let reg = rt.registry();

    // One task at a time: each of the first 4 dispatches stalls its worker
    // for 300ms (≫ threshold + watchdog interval), then the cap disarms
    // the fault and the rest run clean.
    for i in 0..12u64 {
        assert_eq!(rt.spawn(move || i * 2).get(), i * 2);
    }
    assert_eq!(injector.stalls(), 4, "cap bounds the injected stalls");
    assert!(
        wait_until(
            || health_total(&reg, "stalls") as u64 == injector.stalls(),
            Duration::from_secs(5),
        ),
        "stall episodes {} never matched injected stalls {}",
        health_total(&reg, "stalls"),
        injector.stalls()
    );
    rt.shutdown();
}

#[test]
fn cancelled_tasks_are_skipped_and_counted_exactly() {
    install_quiet_hook();
    const N: usize = 50;
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();

    // Park both workers inside task bodies so nothing dispatches until we
    // say so — the cancellable tasks below are guaranteed to still be
    // queued when the token is cancelled.
    let release = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicU64::new(0));
    let blockers: Vec<_> = (0..2)
        .map(|_| {
            let release = release.clone();
            let started = started.clone();
            rt.spawn(move || {
                started.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();
    assert!(wait_until(
        || started.load(Ordering::SeqCst) == 2,
        Duration::from_secs(5)
    ));

    let token = CancelToken::new();
    let ran = Arc::new(AtomicU64::new(0));
    let futures: Vec<_> = (0..N)
        .map(|_| {
            let ran = ran.clone();
            rt.spawn_cancellable(&token, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    token.cancel();
    release.store(true, Ordering::Release);
    for b in blockers {
        b.get();
    }
    rt.wait_idle();

    assert_eq!(ran.load(Ordering::SeqCst), 0, "no cancelled body may run");
    assert_eq!(health_total(&reg, "cancelled-tasks"), N as i64);
    let mut futures = futures.into_iter();
    let first = futures.next().unwrap();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || first.get()))
        .expect_err("get() on a cancelled future must raise");
    assert!(err.downcast_ref::<TaskCancelled>().is_some());
    for f in futures {
        assert!(f.is_cancelled());
    }
    rt.shutdown();
}

#[test]
fn deadline_cancels_task_not_dispatched_in_time() {
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig::with_workers(1));
    let reg = rt.registry();

    // Keep the only worker busy past the deadline.
    let blocker = rt.spawn(|| std::thread::sleep(Duration::from_millis(150)));
    let started = Instant::now();
    let (fut, token) = rt.spawn_with_deadline(Duration::from_millis(30), || 1);
    assert!(token.deadline().is_some());

    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || fut.get()))
        .expect_err("deadline must cancel the queued task");
    assert!(err.downcast_ref::<TaskCancelled>().is_some());
    assert!(
        started.elapsed() >= Duration::from_millis(30),
        "cancellation happens at dispatch, after the deadline passed"
    );
    blocker.get();
    rt.wait_idle();
    assert_eq!(health_total(&reg, "cancelled-tasks"), 1);
    rt.shutdown();
}

#[test]
fn get_timeout_hands_the_future_back_then_completes() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let fut = rt.spawn(|| {
        std::thread::sleep(Duration::from_millis(120));
        7
    });
    let fut = fut
        .get_timeout(Duration::from_millis(15))
        .expect_err("a 120ms task cannot finish in 15ms");
    assert_eq!(fut.get_timeout(Duration::from_secs(5)).ok(), Some(7));
    rt.shutdown();
}

#[test]
fn panic_in_stolen_task_propagates_to_getter() {
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let handle = rt.handle();

    // The outer task queues the panicking child on its own deque, then
    // blocks (without helping), so the child must be *stolen* and executed
    // by the other worker.
    let outer = rt.spawn(move || {
        let child = handle.spawn(|| -> i32 { panic!("stolen boom") });
        std::thread::sleep(Duration::from_millis(100));
        child
    });
    let child = outer.get();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || child.get()))
        .expect_err("the stolen task's panic must surface at get()");
    assert_eq!(err.downcast_ref::<&str>().copied(), Some("stolen boom"));

    let stolen = reg
        .evaluate("/threads{locality#0/total}/count/stolen", false)
        .unwrap()
        .value;
    assert!(
        stolen >= 1,
        "child should have been stolen, counter says {stolen}"
    );
    // The worker that ran the panicking task is unharmed.
    assert_eq!(rt.spawn(|| 5).get(), 5);
    rt.shutdown();
}

#[test]
fn health_benchmark_matches_serial_oracle_under_faults() {
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        faults: Some(FaultPlan {
            seed: 99,
            task_panic_ppm: 60_000,
            worker_kill_ppm: 20_000,
            max_per_category: 20,
            ..FaultPlan::default()
        }),
        ..RuntimeConfig::with_workers(4)
    });
    let injector = rt.fault_injector().unwrap();
    let reg = rt.registry();

    let input = health::HealthInput::test();
    let outcome = health::run(&RpxSpawner::new(rt.handle()), input);
    assert_eq!(outcome, health::run_serial(input));
    rt.wait_idle();

    assert!(injector.task_panics() > 0);
    assert_eq!(
        health_total(&reg, "recovered-tasks") as u64,
        injector.task_panics()
    );
    assert!(wait_until(
        || health_total(&reg, "restarts") as u64 == injector.worker_kills(),
        Duration::from_secs(5),
    ));
    rt.shutdown();
}

#[test]
fn wildcard_active_set_survives_worker_respawn() {
    install_quiet_hook();
    const WORKERS: usize = 3;
    let rt = Runtime::new(RuntimeConfig {
        workers: WORKERS,
        faults: Some(FaultPlan {
            seed: 21,
            worker_kill_ppm: 80_000,
            max_per_category: 6,
            ..FaultPlan::default()
        }),
        ..RuntimeConfig::with_workers(WORKERS)
    });
    let injector = rt.fault_injector().unwrap();
    let reg = rt.registry();

    // A live wildcard query over the per-worker task counters, plus a
    // sampler over the same spec: both resolve through the snapshot /
    // generation machinery.
    reg.add_active("/threads{locality#0/worker-thread#*}/count/cumulative")
        .unwrap();
    let sink = rpx_counters::sampler::MemorySink::new();
    let batches = sink.batches();
    let sampler = Sampler::start(
        &reg,
        SamplerConfig::new(
            vec!["/threads{locality#0/worker-thread#*}/count/cumulative".into()],
            Duration::from_millis(3),
        ),
        Box::new(sink),
    )
    .unwrap();

    let generation_before = reg.generation();

    // Flat burst of top-level dispatches until the injector has killed at
    // least one worker mid-sampling.
    let mut killed = false;
    for round in 0..40 {
        let burst: Vec<_> = (0..100u64).map(|i| rt.spawn(move || i + round)).collect();
        for f in burst {
            f.get();
        }
        if injector.worker_kills() > 0 {
            killed = true;
            break;
        }
    }
    assert!(killed, "plan should have injected a worker kill");
    assert!(
        wait_until(
            || health_total(&reg, "restarts") as u64 == injector.worker_kills(),
            Duration::from_secs(5),
        ),
        "supervisor never finished respawning"
    );

    // The respawn bumped the topology generation...
    assert!(
        reg.generation() > generation_before,
        "worker respawn must be a topology event"
    );
    // ...and within one generation the active set re-expands to the full
    // worker complement — the respawned worker's counters included — with
    // every entry evaluating cleanly.
    let vals = reg.evaluate_active_counters(false);
    assert_eq!(
        vals.len(),
        WORKERS,
        "active set lost a respawned worker's counter: {:?}",
        vals.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
    );
    for (name, v) in &vals {
        assert!(
            v.status.is_ok(),
            "`{name}` stopped evaluating after respawn"
        );
    }
    // Work after the respawn is still attributed across all workers.
    let total: i64 = vals.iter().map(|(_, v)| v.value).sum();
    assert!(total >= 100, "per-worker counters lost task attribution");

    // The sampler saw the respawn too: post-respawn batches keep sampling
    // every worker, full width.
    assert!(
        wait_until(|| !batches.lock().is_empty(), Duration::from_secs(5)),
        "sampler produced no batches"
    );
    sampler.stop();
    let collected = batches.lock();
    let last = collected.last().unwrap();
    assert_eq!(last.readings.len(), WORKERS);
    assert!(last.readings.iter().all(|(_, v)| v.status.is_ok()));
    rt.shutdown();
}

/// `Write` adapter letting the test read back what the sampler's CSV sink
/// wrote on its own thread.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn sampler_rows_stay_uninterrupted_under_counter_read_faults() {
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        faults: Some(FaultPlan {
            counter_fail_ppm: 1_000_000,
            max_per_category: 5,
            ..FaultPlan::default()
        }),
        ..RuntimeConfig::with_workers(2)
    });
    let injector = rt.fault_injector().unwrap();
    let reg = rt.registry();
    register_flaky_counter(&reg, &injector, "/chaos/flaky");

    let buf = SharedBuf::default();
    let sampler = Sampler::start(
        &reg,
        SamplerConfig::new(
            vec![
                "/chaos/flaky".into(),
                "/threads{locality#0/total}/count/cumulative".into(),
            ],
            Duration::from_millis(5),
        ),
        Box::new(CsvSink::new(buf.clone())),
    )
    .expect("sampler starts");
    let sampler_health = sampler.health();

    // Keep the runtime busy while the first 5 flaky reads fail (then the
    // cap disarms the fault); backoff stretches those failures over many
    // batches, so poll on the health accounting.
    let stop_spawning = Arc::new(AtomicBool::new(false));
    let spam = {
        let stop = stop_spawning.clone();
        let handle = rt.handle();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                handle.spawn(|| std::hint::black_box(1 + 1)).get();
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    assert!(
        wait_until(
            || sampler_health.read_errors() == 5,
            Duration::from_secs(10)
        ),
        "sampler saw {} read errors, expected all 5 injected",
        sampler_health.read_errors()
    );
    // Sit out the final backoff window (≤ 32 batches of placeholders) plus
    // a few clean batches, so the flaky counter visibly recovers.
    std::thread::sleep(Duration::from_millis(400));
    stop_spawning.store(true, Ordering::Release);
    spam.join().unwrap();
    sampler.stop();

    // Exact agreement: every injected counter failure was recorded as a
    // sampler read error, and nothing else failed.
    assert_eq!(injector.counter_fails(), 5);
    assert_eq!(sampler_health.read_errors(), injector.counter_fails());
    assert!(
        sampler_health.backoffs() >= 1,
        "repeated failures must back off"
    );

    let csv = String::from_utf8(buf.0.lock().clone()).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert!(
        lines.len() >= 4,
        "expected header + several rows, got:\n{csv}"
    );
    let width = lines[0].split(',').count();
    assert_eq!(width, 4, "header is sequence,timestamp_ns,<2 counters>");
    let mut saw_flaky_gap = false;
    let mut saw_flaky_value = false;
    for (i, row) in lines[1..].iter().enumerate() {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), width, "row {i} lost a column: {row}");
        assert_eq!(
            fields[0].parse::<u64>().unwrap(),
            i as u64,
            "sequence gap at row {i}"
        );
        // The healthy counter is present in every single row.
        assert!(
            fields[3].parse::<f64>().is_ok(),
            "healthy counter missing in row {i}: {row}"
        );
        match fields[2] {
            "" => saw_flaky_gap = true,
            _ => saw_flaky_value = true,
        }
    }
    assert!(saw_flaky_gap, "the failing counter should have empty cells");
    assert!(saw_flaky_value, "the flaky counter recovers after the cap");
    rt.shutdown();
}

#[test]
fn restart_storm_trips_breaker_shrinks_parallelism_loses_no_task() {
    install_quiet_hook();
    const KILLS: u64 = 20;
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        faults: Some(FaultPlan {
            seed: 11,
            worker_kill_ppm: 1_000_000, // every completion kills, until the cap
            max_per_category: KILLS,
            ..FaultPlan::default()
        }),
        restart_budget: 3,
        // No meaningful token refill or streak reset within the test.
        restart_window: Duration::from_secs(60),
        restart_backoff: Duration::from_millis(1),
        restart_backoff_max: Duration::from_millis(4),
        ..RuntimeConfig::with_workers(2)
    });
    let injector = rt.fault_injector().unwrap();
    let reg = rt.registry();

    // A burst large enough that all KILLS kills fire (kills happen after a
    // task completes, so every future still resolves). 20 kills over 2
    // workers put at least 10 crashes on one of them — past its budget of
    // 3, so exactly one breaker trip is guaranteed; the survivor can never
    // trip (the last live worker is always force-respawned).
    let burst: Vec<_> = (0..40u64).map(|i| rt.spawn(move || i * 3)).collect();
    for (i, f) in burst.into_iter().enumerate() {
        assert_eq!(f.get(), i as u64 * 3, "no task may be lost in the storm");
    }
    rt.wait_idle();
    assert_eq!(injector.worker_kills(), KILLS, "the cap bounds the storm");

    // Every kill is either a respawn or the one trip: exact accounting.
    assert!(
        wait_until(
            || {
                health_total(&reg, "restarts") as u64 + health_total(&reg, "breaker-trips") as u64
                    == KILLS
            },
            Duration::from_secs(5),
        ),
        "restarts {} + trips {} never matched injected kills {}",
        health_total(&reg, "restarts"),
        health_total(&reg, "breaker-trips"),
        KILLS
    );
    assert_eq!(health_total(&reg, "breaker-trips"), 1, "exactly one trip");
    assert_eq!(health_total(&reg, "restarts") as u64, KILLS - 1);
    assert_eq!(
        health_total(&reg, "live-workers"),
        1,
        "parallelism shrank by the tripped worker"
    );

    // The tripped worker burned its whole budget first: exactly `budget`
    // respawns, then retirement. The survivor absorbed the rest.
    let tripped: Vec<usize> = (0..2)
        .filter(|&w| health_worker(&reg, "breaker-trips", w) == 1)
        .collect();
    assert_eq!(tripped.len(), 1, "exactly one worker tripped");
    assert_eq!(
        health_worker(&reg, "restarts", tripped[0]),
        3,
        "at most `restart_budget` respawns per window before the trip"
    );
    assert_eq!(
        health_worker(&reg, "restarts", 1 - tripped[0]) as u64,
        KILLS - 1 - 3
    );
    assert!(
        health_worker(&reg, "restart-backoff", tripped[0]) >= 1_000_000,
        "backoff time (ns) is accounted"
    );

    // The shrunken runtime still computes.
    assert_eq!(rt.spawn(|| 21 * 2).get(), 42);
    rt.shutdown();
}

#[test]
fn shed_policy_bounds_pending_exactly_and_returns_the_closure() {
    const MAX: usize = 8;
    const SPAWNS: u64 = 50;
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        max_pending: Some(MAX),
        resume_pending: Some(4),
        overload_policy: OverloadPolicy::Shed,
        ..RuntimeConfig::with_workers(2)
    });
    let reg = rt.registry();
    let admission = rt.admission().expect("max_pending configures a gate");

    // Park both workers so everything spawned below stays pending.
    let release = Arc::new(AtomicBool::new(false));
    let blockers = park_workers(&rt, 2, &release);
    assert!(
        wait_until(|| admission.pending() == 0, Duration::from_secs(5)),
        "blockers must return their admission slots once running"
    );

    // Sequential spawns from one thread: the first MAX admit, every one
    // after that is shed — admitted + shed == spawned, exactly.
    let mut admitted = Vec::new();
    let mut shed = Vec::new();
    for i in 0..SPAWNS {
        match rt.try_spawn(move || i * 10) {
            Ok(f) => admitted.push((i, f)),
            Err(SpawnError::Overloaded(f)) => shed.push((i, f)),
            Err(e) => panic!("unexpected spawn error: {e}"),
        }
    }
    assert_eq!(admitted.len(), MAX, "exactly max_pending admissions");
    assert_eq!(shed.len() as u64, SPAWNS - MAX as u64);
    assert_eq!(
        admitted.len() + shed.len(),
        SPAWNS as usize,
        "admitted + shed == spawned"
    );
    assert_eq!(tasks_total(&reg, "pending"), MAX as i64);
    assert_eq!(
        tasks_total(&reg, "peak-pending"),
        MAX as i64,
        "pending never exceeded max_pending, even transiently"
    );
    assert_eq!(health_total(&reg, "shed") as usize, shed.len());
    assert_eq!(health_total(&reg, "gate-closes"), 1, "one close episode");
    assert!(admission.is_closed());

    // Shedding hands the closure back intact: the caller can run it.
    let (i, f) = shed.pop().unwrap();
    assert_eq!(f(), i * 10, "shed closure must be returned to the caller");

    release.store(true, Ordering::Release);
    for b in blockers {
        b.get();
    }
    for (i, f) in admitted {
        assert_eq!(f.get(), i * 10, "admitted spawns complete after release");
    }
    rt.wait_idle();
    assert_eq!(tasks_total(&reg, "pending"), 0);
    assert!(!admission.is_closed(), "gate reopened at the low watermark");
    // 2 blockers + MAX admitted; every overflow spawn was shed, none ran.
    assert_eq!(admission.totals(), (2 + MAX as u64, SPAWNS - MAX as u64, 0));
    rt.shutdown();
}

#[test]
fn degrade_policy_runs_overflow_inline_and_bounds_pending() {
    const MAX: usize = 8;
    const SPAWNS: u64 = 50;
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        max_pending: Some(MAX),
        resume_pending: Some(4),
        overload_policy: OverloadPolicy::Degrade,
        ..RuntimeConfig::with_workers(2)
    });
    let reg = rt.registry();
    let admission = rt.admission().unwrap();

    let release = Arc::new(AtomicBool::new(false));
    let blockers = park_workers(&rt, 2, &release);
    assert!(wait_until(
        || admission.pending() == 0,
        Duration::from_secs(5)
    ));

    // Infallible spawns under Degrade: the first MAX queue, the overflow
    // runs inline in this caller — so the loop itself makes progress while
    // both workers are parked, and pending stays bounded.
    let inline_ran = Arc::new(AtomicU64::new(0));
    let futures: Vec<_> = (0..SPAWNS)
        .map(|i| {
            let inline_ran = inline_ran.clone();
            rt.spawn(move || {
                inline_ran.fetch_add(1, Ordering::SeqCst);
                i * 7
            })
        })
        .collect();
    assert_eq!(
        inline_ran.load(Ordering::SeqCst),
        SPAWNS - MAX as u64,
        "overflow spawns ran inline while the workers were parked"
    );
    assert_eq!(tasks_total(&reg, "pending"), MAX as i64);
    assert_eq!(
        tasks_total(&reg, "peak-pending"),
        MAX as i64,
        "Degrade keeps peak pending at max_pending"
    );
    assert_eq!(
        health_total(&reg, "degraded-spawns") as u64,
        SPAWNS - MAX as u64
    );

    release.store(true, Ordering::Release);
    for b in blockers {
        b.get();
    }
    for (i, f) in futures.into_iter().enumerate() {
        assert_eq!(f.get(), i as u64 * 7);
    }
    rt.wait_idle();
    assert_eq!(admission.totals(), (2 + MAX as u64, 0, SPAWNS - MAX as u64));
    rt.shutdown();
}

#[test]
fn quiesce_cancels_stragglers_exactly_and_flushes_a_final_sampler_row() {
    const QUEUED: u64 = 20;
    install_quiet_hook();
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();

    // Sampler on a 10s interval: any row beyond the first exists only
    // because the drain hook's flush_now forced it.
    let buf = SharedBuf::default();
    let sampler = Arc::new(
        Sampler::start(
            &reg,
            SamplerConfig::new(
                vec![
                    "/runtime{locality#0/total}/tasks/pending".into(),
                    "/runtime{locality#0/total}/health/cancelled-tasks".into(),
                ],
                Duration::from_secs(10),
            ),
            Box::new(CsvSink::new(buf.clone())),
        )
        .expect("sampler starts"),
    );
    let flusher = sampler.clone();
    rt.add_drain_hook(move || {
        assert!(flusher.flush_now(), "drain hook flush must complete");
    });

    // Both workers parked; QUEUED tasks stay queued behind them. The
    // blockers release only *after* quiesce's first drain deadline passes,
    // so the queued tasks are dispatched under quiesce-cancel and every one
    // of them — exactly — is cancelled rather than run.
    let release = Arc::new(AtomicBool::new(false));
    let blockers = park_workers(&rt, 2, &release);
    let ran = Arc::new(AtomicU64::new(0));
    let queued: Vec<_> = (0..QUEUED)
        .map(|_| {
            let ran = ran.clone();
            rt.spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();

    let releaser = {
        let release = release.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            release.store(true, Ordering::Release);
        })
    };
    let report = rt.quiesce(Duration::from_millis(150));
    releaser.join().unwrap();
    for b in blockers {
        b.get();
    }

    assert!(
        !report.drained,
        "blockers held the first drain past deadline"
    );
    assert_eq!(report.cancelled, QUEUED, "every straggler cancelled, once");
    assert_eq!(report.remaining, 0, "nothing left running after quiesce");
    assert_eq!(ran.load(Ordering::SeqCst), 0, "no cancelled body may run");
    assert_eq!(health_total(&reg, "cancelled-tasks"), QUEUED as i64);
    for f in queued {
        assert!(f.is_cancelled());
    }

    // After quiesce: fallible spawns refuse, infallible spawns run inline.
    match rt.try_spawn(|| 1) {
        Err(SpawnError::Draining(f)) => assert_eq!(f(), 1),
        Err(e) => panic!("wrong error from a draining runtime: {e}"),
        Ok(_) => panic!("try_spawn must refuse on a draining runtime"),
    }
    assert_eq!(rt.spawn(|| 5).get(), 5, "inline fallback still computes");

    // The flushed row is complete and reflects the post-drain state.
    let csv = String::from_utf8(buf.0.lock().clone()).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert!(
        lines.len() >= 3,
        "expected header + startup row + flushed row, got:\n{csv}"
    );
    let width = lines[0].split(',').count();
    assert_eq!(width, 4, "header is sequence,timestamp_ns,<2 counters>");
    let last: Vec<&str> = lines.last().unwrap().split(',').collect();
    assert_eq!(last.len(), width, "the final row must be complete");
    assert_eq!(
        last[2].parse::<f64>().unwrap(),
        0.0,
        "final row: pending drained to zero"
    );
    assert_eq!(
        last[3].parse::<f64>().unwrap(),
        QUEUED as f64,
        "final row: the cancellations are visible"
    );
    rt.shutdown();
}

#[test]
fn injected_steal_storm_raises_exactly_one_anomaly_event() {
    install_quiet_hook();
    // A synthetic steal storm spanning the first 6 watchdog ticks: the
    // anomaly detector must open exactly ONE steal-storm episode (the
    // condition holds tick after tick — an episode, not an event per
    // tick), and close it when the storm ends without ever re-arming.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        faults: Some(FaultPlan {
            steal_storm_ticks: 6,
            ..FaultPlan::default()
        }),
        watchdog_interval: Duration::from_millis(10),
        ..RuntimeConfig::with_workers(2)
    });
    let reg = rt.registry();
    let anomaly_total = |which: &str| {
        reg.evaluate(
            &format!("/runtime{{locality#0/total}}/anomaly/{which}"),
            false,
        )
        .expect("anomaly counter evaluates")
        .value
    };

    // Keep a trickle of real work flowing so the detector sees executions.
    for i in 0..20u64 {
        assert_eq!(rt.spawn(move || i + 1).get(), i + 1);
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        wait_until(
            || anomaly_total("steal-storms") == 1,
            Duration::from_secs(5)
        ),
        "steal-storm episode never detected: {}",
        anomaly_total("steal-storms")
    );
    // Outlast the storm (6 ticks × 10ms, plus slack): the count must hold
    // at exactly one — neither re-armed mid-storm nor after it cleared.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(anomaly_total("steal-storms"), 1, "exactly one episode");
    assert_eq!(
        anomaly_total("events"),
        anomaly_total("steal-storms")
            + anomaly_total("granularity-collapses")
            + anomaly_total("idle-spikes"),
        "total is the sum of the kinds"
    );

    let events = rt.anomalies();
    let storms: Vec<_> = events
        .iter()
        .filter(|e| e.kind == rpx_runtime::AnomalyKind::StealStorm)
        .collect();
    assert_eq!(storms.len(), 1, "event log agrees with the counter");
    assert!(
        storms[0].value > storms[0].baseline,
        "the recorded episode captures the breach"
    );
    rt.shutdown();
}
