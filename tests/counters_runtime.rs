//! Integration: the counter framework observed through real runtime
//! executions — the paper's measurement protocol end to end.

use std::sync::Arc;

use rpx::counters::sampler::{MemorySink, Sampler, SamplerConfig};
use rpx::counters::CounterName;
use rpx::runtime::{Runtime, RuntimeConfig};

fn spawn_burst(rt: &Runtime, tasks: usize, spin: u64) {
    let futures: Vec<_> = (0..tasks)
        .map(|_| {
            rt.spawn(move || {
                let mut acc = 0u64;
                for i in 0..spin {
                    acc = acc.wrapping_add(i).rotate_left(3);
                }
                std::hint::black_box(acc);
            })
        })
        .collect();
    for f in futures {
        f.get();
    }
}

#[test]
fn per_sample_protocol_measures_each_sample_independently() {
    // The paper: evaluate+reset around every sample; 20 samples, medians.
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    reg.add_active("/threads{locality#0/total}/count/cumulative")
        .unwrap();

    let mut counts = Vec::new();
    for sample in 0..5 {
        reg.reset_active_counters();
        spawn_burst(&rt, 50 + sample * 10, 100);
        let values = reg.evaluate_active_counters(true);
        counts.push(values[0].1.value);
    }
    // Each sample sees exactly its own tasks.
    assert_eq!(counts, vec![50, 60, 70, 80, 90]);
    rt.shutdown();
}

#[test]
fn cumulative_time_equals_sum_over_workers() {
    let rt = Runtime::new(RuntimeConfig::with_workers(3));
    let reg = rt.registry();
    spawn_burst(&rt, 200, 2_000);
    rt.wait_idle();
    let total = reg
        .evaluate("/threads{locality#0/total}/time/cumulative", false)
        .unwrap()
        .value;
    let per_worker: i64 = reg
        .get_counters("/threads{locality#0/worker-thread#*}/time/cumulative")
        .unwrap()
        .iter()
        .map(|(_, c)| c.get_value(false).value)
        .sum();
    assert_eq!(total, per_worker);
    assert!(total > 0);
    rt.shutdown();
}

#[test]
fn statistics_counter_tracks_task_duration_samples() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let name = "/statistics/max@/threads{locality#0/total}/time/average,32";
    let parsed: CounterName = name.parse().unwrap();
    let stat = reg.get_counter(&parsed).unwrap();

    for _ in 0..4 {
        spawn_burst(&rt, 50, 1_000);
        let v = stat.get_value(false);
        assert!(v.status.is_ok());
    }
    let max = stat.get_value(false).value;
    assert!(max > 0, "max of sampled averages must be positive");
    rt.shutdown();
}

#[test]
fn derived_bandwidth_composition_over_papi_counters() {
    // The paper's bandwidth metric as one derived counter expression.
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let futures: Vec<_> = (0..64)
        .map(|_| {
            rt.spawn(|| {
                // Tasks report their memory footprint to the synthetic PMU.
                rpx::papi::record_footprint(64 * 1024, 16 * 1024, 0);
            })
        })
        .collect();
    for f in futures {
        f.get();
    }
    let total = reg
        .evaluate(
            "/arithmetics/add@/papi{locality#0/total}/OFFCORE_REQUESTS::ALL_DATA_RD,\
             /papi{locality#0/total}/OFFCORE_REQUESTS::DEMAND_CODE_RD,\
             /papi{locality#0/total}/OFFCORE_REQUESTS::DEMAND_RFO",
            false,
        )
        .unwrap();
    // 64 tasks × (1024 + 256) lines.
    assert_eq!(total.value, 64 * 1280);
    rt.shutdown();
}

#[test]
fn sampler_watches_a_live_runtime() {
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let sink = MemorySink::new();
    let batches = sink.batches();
    let sampler = Sampler::start(
        &rt.registry(),
        SamplerConfig::new(
            vec!["/threads{locality#0/total}/count/cumulative".into()],
            std::time::Duration::from_millis(5),
        ),
        Box::new(sink),
    )
    .unwrap();

    spawn_burst(&rt, 500, 10_000);
    rt.wait_idle();
    // Wait until a sample *after* completion has landed.
    while batches
        .lock()
        .last()
        .map(|b| b.readings[0].1.value)
        .unwrap_or(0)
        < 500
    {
        std::thread::yield_now();
    }
    sampler.stop();

    let collected = batches.lock();
    let last = collected.last().unwrap().readings[0].1.value;
    assert!(
        last >= 500,
        "sampler should have seen all 500 tasks, saw {last}"
    );
    // Monotone non-decreasing across batches.
    for w in collected.windows(2) {
        assert!(w[1].readings[0].1.value >= w[0].readings[0].1.value);
    }
    rt.shutdown();
}

#[test]
fn counter_overhead_is_small_for_moderate_tasks() {
    // The paper: collecting counters costs ≲10% even down to fine grain.
    // Measure a workload with and without an active counter set + sampler.
    let run = |with_counters: bool| -> std::time::Duration {
        let rt = Runtime::new(RuntimeConfig::with_workers(2));
        let reg = rt.registry();
        let _sampler = with_counters.then(|| {
            for n in [
                "/threads{locality#0/total}/time/average",
                "/threads{locality#0/total}/time/average-overhead",
                "/threads{locality#0/total}/count/cumulative",
            ] {
                reg.add_active(n).unwrap();
            }
            Sampler::start(
                &reg,
                SamplerConfig::new(
                    vec!["/threads{locality#0/total}/time/average".into()],
                    std::time::Duration::from_millis(5),
                ),
                Box::new(MemorySink::new()),
            )
            .unwrap()
        });
        let t0 = std::time::Instant::now();
        spawn_burst(&rt, 2_000, 5_000);
        rt.wait_idle();
        let dt = t0.elapsed();
        rt.shutdown();
        dt
    };

    // Warm up, then take medians of 3.
    let _ = run(false);
    let mut base: Vec<_> = (0..3).map(|_| run(false)).collect();
    let mut inst: Vec<_> = (0..3).map(|_| run(true)).collect();
    base.sort();
    inst.sort();
    let (b, i) = (base[1].as_secs_f64(), inst[1].as_secs_f64());
    let overhead = (i - b) / b * 100.0;
    // Generous CI bound (the paper's bound is 10% at *very* fine grain;
    // noise on a 1-vCPU host can dominate).
    assert!(
        overhead < 60.0,
        "counter collection overhead {overhead:.1}% is out of hand (base {b:.4}s vs {i:.4}s)"
    );
}

#[test]
fn overhead_counters_expose_sampler_cost() {
    // The paper's intrinsic-overhead claim as a queryable counter: the
    // time spent evaluating counter batches is itself measured and
    // reported under /counters{locality#0/total}/overhead/*.
    let rt = Runtime::new(RuntimeConfig::with_workers(2));
    let reg = rt.registry();
    let sink = MemorySink::new();
    let batches = sink.batches();
    let sampler = Sampler::start(
        &reg,
        SamplerConfig::new(
            vec![
                "/threads{locality#0/total}/count/cumulative".into(),
                "/threads{locality#0/worker-thread#*}/time/cumulative".into(),
            ],
            std::time::Duration::from_millis(2),
        ),
        Box::new(sink),
    )
    .unwrap();

    spawn_burst(&rt, 200, 2_000);
    rt.wait_idle();
    while batches.lock().len() < 10 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    sampler.stop();
    let ticks = batches.lock().len() as i64;

    let count = reg
        .evaluate("/counters{locality#0/total}/overhead/count", false)
        .unwrap();
    assert!(
        count.value >= ticks,
        "every sampler tick is an accounted batch ({} < {ticks})",
        count.value
    );
    let time = reg
        .evaluate("/counters{locality#0/total}/overhead/time", false)
        .unwrap();
    assert!(
        time.value > 0,
        "evaluation wall time must be nonzero after {ticks} ticks"
    );
    // Self-measurement stays intrinsic: far below a millisecond per batch
    // on average for this tiny counter set.
    let per_batch_ns = time.value / count.value.max(1);
    assert!(
        per_batch_ns < 5_000_000,
        "overhead/time reports {per_batch_ns}ns per batch — implausible"
    );
    rt.shutdown();
}

#[test]
fn multiple_runtimes_have_independent_registries() {
    let a = Runtime::new(RuntimeConfig::with_workers(1));
    let b = Runtime::new(RuntimeConfig::with_workers(1));
    spawn_burst(&a, 10, 10);
    a.wait_idle();
    let ca = a
        .registry()
        .evaluate("/threads{locality#0/total}/count/cumulative", false)
        .unwrap();
    let cb = b
        .registry()
        .evaluate("/threads{locality#0/total}/count/cumulative", false)
        .unwrap();
    assert!(ca.value >= 10);
    assert_eq!(cb.value, 0, "runtime B executed nothing");
    a.shutdown();
    b.shutdown();
}

#[test]
fn value_cells_let_the_application_publish_metrics() {
    let rt = Runtime::new(RuntimeConfig::with_workers(1));
    let reg = rt.registry();
    let cell = reg.register_value("/app/iteration", "current solver iteration", "1");
    let c2 = Arc::clone(&cell);
    let f = rt.spawn(move || {
        for i in 0..50 {
            c2.set(i);
        }
    });
    f.get();
    assert_eq!(reg.evaluate("/app/iteration", false).unwrap().value, 49);
    rt.shutdown();
}
